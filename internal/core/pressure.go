package core

import (
	"fmt"
	"time"

	"anole/internal/device"
	"anole/internal/flight"
	"anole/internal/pressure"
	"anole/internal/synth"
	"anole/internal/telemetry"
)

// FrameVerdict is the terminal disposition of one offered frame. Every
// frame a MultiRuntime is offered receives exactly one verdict — under
// overload frames degrade or drop, they never wait unboundedly.
// VerdictServed is the zero value, so code paths that never touch the
// pressure machinery produce bit-identical FrameResults to builds
// before it existed.
type FrameVerdict int

const (
	// VerdictServed: the full pipeline ran and the decided (or
	// fallback) model served the frame — the only verdict that exists
	// when pressure is disabled.
	VerdictServed FrameVerdict = iota
	// VerdictDowngraded: the shed ladder served the frame with the
	// smallest resident model, paying no link or admission work.
	VerdictDowngraded
	// VerdictShed: the shed ladder dropped the frame at admission; no
	// decision, cache, or detector work was done.
	VerdictShed
	// VerdictQuarantined: the frame's stream was quarantined by the
	// watchdog (stalled or erroring), and the frame was disposed
	// without processing so the rest of the fleet keeps its tick rate.
	VerdictQuarantined
)

func (v FrameVerdict) String() string {
	switch v {
	case VerdictServed:
		return "served"
	case VerdictDowngraded:
		return "downgraded"
	case VerdictShed:
		return "shed"
	case VerdictQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// PressureConfig tunes the overload-survival machinery; every field's
// zero value selects the documented default, so &PressureConfig{}
// enables the monitor and watchdog with defaults (the deadline
// controller additionally needs MultiRuntimeConfig.Deadline).
type PressureConfig struct {
	// Monitor tunes the pressure-level thresholds and hysteresis.
	Monitor pressure.MonitorConfig
	// Controller tunes the shed ladder's escalation persistence; its
	// Target field is ignored (MultiRuntimeConfig.Deadline is the
	// target).
	Controller pressure.ControllerConfig
	// Watchdog tunes stall detection and quarantine length.
	Watchdog pressure.WatchdogConfig
	// CriticalWatermark is the cache byte-watermark fraction applied
	// while the monitor reads Critical (default 0.75); Nominal and
	// Elevated restore 1.0.
	CriticalWatermark float64
}

// pressureState is the MultiRuntime's attachment of the pressure
// machinery: one monitor, one fleet-level deadline controller, one
// watchdog, and the per-tick scratch that feeds them.
type pressureState struct {
	mon      *pressure.Monitor
	ctl      *pressure.Controller
	wd       *pressure.Watchdog
	deadline time.Duration

	// latScale normalizes each stream's served latency for the shared
	// deadline controller: the ratio of the fleet's fastest mode
	// throughput to stream i's (≥ 1). Dividing a slow device's latency
	// by its scale gives every stream a deadline proportional to its
	// hardware — a nano is not "overloaded" merely for being a nano.
	// Nil (uniform fleet, or no fleet) means no normalization.
	latScale []float64

	// Per-tick scratch, sized to the stream count.
	active   []bool
	progress []bool
	live     []int
	// probeRR round-robins the ShedDrop probe stream so the controller
	// keeps observing served-frame sojourn while the fleet drops.
	probeRR int
}

// newPressureState wires the machinery for a MultiRuntime. Enabled by
// a Deadline, a PressureConfig, or both; returns nil when neither is
// set so the zero-config runtime carries no pressure code at all.
func newPressureState(streams int, deadline time.Duration, cfg *PressureConfig, reg *telemetry.Registry, onLevel func(pressure.Level)) *pressureState {
	if deadline <= 0 && cfg == nil {
		return nil
	}
	pc := PressureConfig{}
	if cfg != nil {
		pc = *cfg
	}
	if pc.Monitor.Metrics == nil {
		pc.Monitor.Metrics = reg
	}
	ps := &pressureState{
		mon:      pressure.NewMonitor(pc.Monitor),
		wd:       pressure.NewWatchdog(streams, pc.Watchdog),
		deadline: deadline,
		active:   make([]bool, streams),
		progress: make([]bool, streams),
		live:     make([]int, 0, streams),
	}
	if deadline > 0 {
		cc := pc.Controller
		cc.Target = deadline
		ps.ctl = pressure.NewController(cc)
	}
	if onLevel != nil {
		ps.mon.Subscribe(onLevel)
	}
	return ps
}

// fleetLatencyScales derives the controller's per-stream latency
// normalization from a device fleet: scale[i] is the ratio of the
// fleet's fastest mode throughput to stream i's. Returns nil for a
// uniform fleet (or none), so homogeneous runs keep the controller's
// historical raw-latency behavior bit for bit.
func fleetLatencyScales(fleet device.Fleet) []float64 {
	if len(fleet) == 0 {
		return nil
	}
	gflops := make([]float64, len(fleet))
	fastest := 0.0
	uniform := true
	for i, a := range fleet {
		gflops[i] = a.Profile.Modes[a.Mode].GFLOPS
		if gflops[i] > fastest {
			fastest = gflops[i]
		}
		if gflops[i] != gflops[0] {
			uniform = false
		}
	}
	if uniform || fastest <= 0 {
		return nil
	}
	scales := make([]float64, len(fleet))
	for i := range scales {
		scales[i] = fastest / gflops[i]
	}
	return scales
}

// criticalWatermark returns the sweep fraction for a config (0.75
// default).
func (cfg *PressureConfig) criticalWatermark() float64 {
	if cfg != nil && cfg.CriticalWatermark > 0 && cfg.CriticalWatermark <= 1 {
		return cfg.CriticalWatermark
	}
	return 0.75
}

// disposedResult is the terminal FrameResult for a frame that never
// entered the pipeline (shed or quarantined).
func disposedResult(v FrameVerdict) FrameResult {
	return FrameResult{Desired: -1, Used: -1, RunnerUp: -1, Verdict: v}
}

// processFrameShed is ProcessFrame under a shed-ladder rung. Rung
// ShedNone is exactly ProcessFrame (bit-for-bit — this wrapper adds
// nothing to the nominal path). Higher rungs degrade in order: suppress
// prefetch planning, serve the smallest resident model without link
// traffic, drop the frame outright.
func (r *Runtime) processFrameShed(f *synth.Frame, rung pressure.Rung) (FrameResult, error) {
	if rung <= pressure.ShedNone {
		return r.ProcessFrame(f)
	}
	if err := r.validateFrame(f); err != nil {
		return FrameResult{}, err
	}
	if rung >= pressure.ShedDrop {
		// Terminal drop. The link clock still advances — frame time
		// passes whether or not the device serves — but no decision,
		// cache, or detector work runs and no selection state moves.
		if r.pf != nil {
			r.pf.Tick()
		}
		r.stats.ShedFrames++
		return disposedResult(VerdictShed), nil
	}
	var res FrameResult
	seq := r.beginFrame()
	r.computeDecision(f)
	rank := r.stageDecide(seq, &res)
	if !(rung >= pressure.ShedDowngrade && r.resolveDowngrade(f, seq, &res)) {
		// Rung 1 (or nothing resident to downgrade onto): the normal
		// resolve path runs, link stalls and all.
		if err := r.stageResolve(f, seq, rank, &res); err != nil {
			return FrameResult{}, err
		}
	}
	detectDur := r.detectAccount(f, &res)
	r.predsBuf = r.bundle.Detectors[res.Used].DetectFrame(r.predsBuf, f)
	r.finishDetect(f, seq, detectDur, &res)
	// Every rung ≥ ShedPrefetch suppresses background planning.
	r.planSuppressed = true
	r.stageFinish(&res)
	r.planSuppressed = false
	return res, nil
}

// resolveDowngrade is the rung-2 replacement for stageResolve: serve
// the decided model if it happens to be resident, otherwise the
// smallest resident model (by weight bytes — the cheapest thing the
// device can run), paying no demand fetch and no admission eviction.
// Returns false when nothing is resident (cold start), in which case
// the caller falls back to the full resolve path.
func (r *Runtime) resolveDowngrade(f *synth.Frame, seq int64, res *FrameResult) bool {
	desiredName := r.bundle.Detectors[res.Desired].Name
	if r.cache.Contains(desiredName) {
		hit, _, err := r.cache.Request(desiredName, 1)
		if err != nil {
			return false
		}
		res.Hit = hit
		res.Used = res.Desired
		r.recordStage(seq, telemetry.StageCache, res.Desired, 0, hit, false, nil)
		return true
	}
	best := -1
	var bestBytes int64
	for i, d := range r.bundle.Detectors {
		if !r.cache.Contains(d.Name) {
			continue
		}
		if wb := d.WeightBytes(); best < 0 || wb < bestBytes {
			best, bestBytes = i, wb
		}
	}
	if best < 0 {
		return false
	}
	// Request on a resident key is a pure hit: it touches the entry
	// (LFU honesty) and keeps the Hits+Misses==Lookups invariant.
	if _, _, err := r.cache.Request(r.bundle.Detectors[best].Name, 1); err != nil {
		return false
	}
	res.Used = best
	res.Verdict = VerdictDowngraded
	r.stats.DowngradedServed++
	r.stats.FallbackServed++
	r.met.fallback.Inc()
	r.recordStage(seq, telemetry.StageCache, best, 0, true, false, nil)
	return true
}

// processTickPressure is the pressure-aware tick dispatch: quarantined
// streams' frames are disposed first (the tick barrier never waits on
// a dead stream), then the live set runs under the controller's
// current rung — the untouched nominal paths at ShedNone, the shed
// ladder otherwise. Frame errors quarantine the stream instead of
// aborting the fleet.
func (m *MultiRuntime) processTickPressure(tick int, ready []int, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) error {
	ps := m.press
	ps.live = ps.live[:0]
	for _, i := range ready {
		if !ps.wd.Quarantined(i) {
			ps.live = append(ps.live, i)
			continue
		}
		res := disposedResult(VerdictQuarantined)
		m.streams[i].stats.QuarantinedFrames++
		ps.mon.NoteQuarantinedFrame()
		if obs != nil {
			if err := obs(i, streams[i][tick], res); err != nil {
				return fmt.Errorf("core: stream %d observer: %w", i, err)
			}
		}
		results[i][tick] = res
	}
	rung := ps.ctl.Rung()
	if rung == pressure.ShedNone {
		if m.batch {
			// Nominal: the batched path runs untouched, so batched and
			// unbatched stay bit-identical. (A frame error here aborts
			// as it always has; error-to-quarantine applies on the
			// serial paths.)
			return m.processTickBatched(tick, ps.live, streams, results, obs)
		}
		return m.processTickGuarded(tick, ps.live, pressure.ShedNone, streams, results, obs)
	}
	return m.processTickGuarded(tick, ps.live, rung, streams, results, obs)
}

// processTickGuarded runs one tick's live frames serially under rung,
// converting frame errors into stream quarantines. At ShedDrop one
// probe stream per tick (round-robin) still serves — downgraded — so
// the deadline controller keeps receiving sojourn samples and can
// observe recovery; without the probe a fully-dropping fleet would
// never relax.
func (m *MultiRuntime) processTickGuarded(tick int, live []int, rung pressure.Rung, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) error {
	ps := m.press
	probe := -1
	if rung >= pressure.ShedDrop && len(live) > 0 {
		probe = live[ps.probeRR%len(live)]
		ps.probeRR++
	}
	for _, i := range live {
		f := streams[i][tick]
		r := rung
		if i == probe {
			r = pressure.ShedDowngrade
		}
		res, err := m.streams[i].processFrameShed(f, r)
		if err != nil {
			// The stream cannot make progress (e.g. cold start with an
			// unreachable repository). Quarantine it and keep the fleet
			// alive; the watchdog releases it for a probe later.
			if ps.wd.Quarantine(i) {
				ps.mon.NoteQuarantine()
				m.flt.Record(flight.Event{Stream: i, Kind: flight.KindQuarantine, Detail: "error"})
			}
			res = disposedResult(VerdictQuarantined)
			m.streams[i].stats.QuarantinedFrames++
			ps.mon.NoteQuarantinedFrame()
		} else if r > pressure.ShedNone {
			switch res.Verdict {
			case VerdictShed:
				ps.mon.NoteShed(pressure.ShedDrop)
			case VerdictDowngraded:
				ps.mon.NoteShed(pressure.ShedDowngrade)
			default:
				ps.mon.NoteShed(pressure.ShedPrefetch)
			}
		}
		if obs != nil {
			if err := obs(i, f, res); err != nil {
				return fmt.Errorf("core: stream %d observer: %w", i, err)
			}
		}
		results[i][tick] = res
	}
	return nil
}

// observePressureTick folds one completed tick into the controller,
// watchdog, and monitor. Runs on the event-loop goroutine after every
// tick.
func (m *MultiRuntime) observePressureTick(tick int, ready []int, results [][]FrameResult) {
	ps := m.press
	for i := range ps.active {
		ps.active[i] = false
		ps.progress[i] = false
	}
	var worst time.Duration
	served := false
	for _, i := range ready {
		res := results[i][tick]
		switch res.Verdict {
		case VerdictServed, VerdictDowngraded:
			served = true
			ps.active[i] = true
			ps.progress[i] = true
			lat := res.Latency
			if ps.latScale != nil {
				lat = time.Duration(float64(lat) / ps.latScale[i])
			}
			if lat > worst {
				worst = lat
			}
		default:
			// Shed frames are fleet policy and quarantined frames are
			// already sanctioned; neither counts toward stall credit.
		}
	}
	ps.ctl.ObserveTick(worst, served)
	for _, qi := range ps.wd.ObserveTick(ps.active, ps.progress) {
		ps.mon.NoteQuarantine()
		m.flt.Record(flight.Event{Stream: qi, Kind: flight.KindQuarantine, Detail: "stall"})
	}
	var heat float64
	for _, d := range m.devs {
		if d != nil && d.Heat() > heat {
			heat = d.Heat()
		}
	}
	var residency float64
	if bc := m.cache.ByteCapacity(); bc > 0 {
		residency = float64(m.cache.BytesUsed()) / float64(bc)
	}
	ps.mon.Update(pressure.Sample{
		Heat:      heat,
		Residency: residency,
		Sojourn:   ps.ctl.Sojourn(worst),
	})
}

// PressureStats is the fleet-level overload summary for reports.
type PressureStats struct {
	// Level and Rung are the monitor and shed ladder's final state.
	Level string `json:"level"`
	Rung  string `json:"rung"`
	// ShedFrames / DowngradedServed / QuarantinedFrames aggregate the
	// per-stream verdict counters; Quarantines counts quarantine
	// entries (a stream can be quarantined more than once).
	ShedFrames        int `json:"shedFrames"`
	DowngradedServed  int `json:"downgradedServed"`
	QuarantinedFrames int `json:"quarantinedFrames"`
	Quarantines       int `json:"quarantines"`
}

// PressureStats returns the overload summary, or nil when the pressure
// machinery is disabled.
func (m *MultiRuntime) PressureStats() *PressureStats {
	if m.press == nil {
		return nil
	}
	out := &PressureStats{
		Level:       m.press.mon.Level().String(),
		Rung:        m.press.ctl.Rung().String(),
		Quarantines: m.press.wd.Quarantines(),
	}
	for _, rt := range m.streams {
		out.ShedFrames += rt.stats.ShedFrames
		out.DowngradedServed += rt.stats.DowngradedServed
		out.QuarantinedFrames += rt.stats.QuarantinedFrames
	}
	return out
}

// PressureLevel returns the monitor's current level (Nominal when the
// machinery is disabled).
func (m *MultiRuntime) PressureLevel() pressure.Level {
	if m.press == nil {
		return pressure.Nominal
	}
	return m.press.mon.Level()
}

// PressureMonitor exposes the monitor so external subscribers (the
// adapt loop's uplink gate) can watch the same level the fleet reacts
// to. Nil when the machinery is disabled.
func (m *MultiRuntime) PressureMonitor() *pressure.Monitor {
	if m.press == nil {
		return nil
	}
	return m.press.mon
}

// CaptureCheckpoint snapshots the MultiRuntime's share of the warm
// state worth surviving a restart: the Markov transition counts and
// the cache residency manifest with LFU frequencies. Generation
// defaults to 1; an adapt.Loop overwrites it (and adds drift windows)
// via its own CaptureCheckpoint. Call only between ProcessStreams
// calls.
func (m *MultiRuntime) CaptureCheckpoint() *pressure.Checkpoint {
	c := &pressure.Checkpoint{Generation: 1}
	if m.pf != nil {
		n, alpha, obs, counts, rowSum := m.pf.Markov().State()
		c.Markov = &pressure.MarkovState{N: n, Alpha: alpha, Obs: obs, Counts: counts, RowSum: rowSum}
	}
	for _, key := range m.cache.Keys() {
		c.Cache = append(c.Cache, pressure.CacheEntry{Key: key, Freq: m.cache.Freq(key)})
	}
	if m.fleet != nil {
		c.Fleet = make([]string, len(m.fleet))
		for i, a := range m.fleet {
			c.Fleet[i] = a.Class
		}
	}
	return c
}

// RestoreCheckpoint warm-starts the MultiRuntime from a checkpoint:
// Markov counts are restored into the scheduler's transition model and
// the residency manifest is re-pinned via Warm (model bytes persist on
// device flash across a process death, so residency costs no link
// traffic to restore). Manifest keys the current bundle does not
// define are skipped — a checkpoint can never admit a model the
// deployed generation does not carry. Returns how many models were
// warmed. Call only between ProcessStreams calls, before traffic.
func (m *MultiRuntime) RestoreCheckpoint(c *pressure.Checkpoint) (warmed int, err error) {
	if c == nil {
		return 0, fmt.Errorf("core: nil checkpoint")
	}
	// A checkpoint captured on one fleet layout must not warm another:
	// stream indices would map to different hardware. Checkpoints without
	// a fleet section (v1, or single-device runs) restore anywhere.
	if len(c.Fleet) > 0 && m.fleet != nil {
		if len(c.Fleet) != len(m.fleet) {
			return 0, fmt.Errorf("core: checkpoint fleet has %d streams, runtime %d", len(c.Fleet), len(m.fleet))
		}
		for i, class := range c.Fleet {
			if class != m.fleet[i].Class {
				return 0, fmt.Errorf("core: checkpoint stream %d class %q, runtime %q", i, class, m.fleet[i].Class)
			}
		}
	}
	if c.Markov != nil && m.pf != nil {
		if err := m.pf.Markov().RestoreState(c.Markov.N, c.Markov.Obs, c.Markov.Counts, c.Markov.RowSum); err != nil {
			return 0, fmt.Errorf("core: restore markov: %w", err)
		}
	}
	known := make(map[string]bool, m.bundle.NumModels())
	for _, d := range m.bundle.Detectors {
		known[d.Name] = true
	}
	if m.plan != nil {
		for _, v := range m.plan.variants {
			for _, d := range v.bundle.Detectors {
				known[d.Name] = true
			}
		}
	}
	for _, e := range c.Cache {
		if !known[e.Key] {
			continue
		}
		if m.cache.Warm(e.Key, 1, e.Freq) {
			warmed++
		}
	}
	return warmed, nil
}
