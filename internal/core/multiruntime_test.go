package core_test

import (
	"errors"
	"sync"
	"testing"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/synth"
	"anole/internal/testutil"
)

// streamFrames deals the shared fixture's test frames into n
// equally-sized streams, round-robin so every stream sees a scene mix.
func streamFrames(t *testing.T, n, perStream int) [][]*synth.Frame {
	t.Helper()
	fx := testutil.Shared(t)
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		t.Fatal("fixture has no test frames")
	}
	// Frames are read-only inputs, so wrapping around the corpus (and
	// sharing frames between streams) is safe.
	out := make([][]*synth.Frame, n)
	for s := 0; s < n; s++ {
		for i := 0; i < perStream; i++ {
			out[s] = append(out[s], frames[(i*n+s)%len(frames)])
		}
	}
	return out
}

// TestMultiRuntimeSingleStreamMatchesRuntime is the determinism guard
// for the refactor: one stream through MultiRuntime (single shard by
// default) must produce frame-for-frame identical results to the
// original single-tenant Runtime on the same sequence, including
// simulated latency, hysteresis smoothing and cache behavior.
func TestMultiRuntimeSingleStreamMatchesRuntime(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 120)[0]

	for _, hysteresis := range []int{0, 3} {
		single, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           device.NewSimulator(device.JetsonTX2NX),
		})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          1,
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           &device.JetsonTX2NX,
		})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cache().NumShards() != 1 {
			t.Fatalf("1 stream defaulted to %d shards, want 1", multi.Cache().NumShards())
		}

		want := make([]core.FrameResult, 0, len(frames))
		for _, f := range frames {
			res, err := single.ProcessFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}
		got, err := multi.ProcessStreams([][]*synth.Frame{frames}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[0]) != len(want) {
			t.Fatalf("hysteresis %d: %d results, want %d", hysteresis, len(got[0]), len(want))
		}
		for i := range want {
			if got[0][i] != want[i] {
				t.Fatalf("hysteresis %d: frame %d diverged:\n multi %+v\nsingle %+v",
					hysteresis, i, got[0][i], want[i])
			}
		}

		ss, ms := single.Stats(), multi.Stats()
		if ss.Frames != ms.Frames || ss.Switches != ms.Switches ||
			ss.Cache != ms.Cache || ss.Detection != ms.Detection ||
			ss.TotalLatency != ms.TotalLatency {
			t.Fatalf("hysteresis %d: aggregate stats diverged:\n multi %+v\nsingle %+v", hysteresis, ms, ss)
		}
	}
}

// TestMultiRuntimeConcurrentStreams drives four streams over four
// workers sharing one cache, asserting the aggregate bookkeeping is
// exact whatever the interleaving: no frame lost, one cache lookup per
// frame, residency within capacity, and per-stream totals summing to
// the aggregate. Run with -race.
func TestMultiRuntimeConcurrentStreams(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 60
	frameSets := streamFrames(t, streams, perStream)

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: 4,
		Workers:    streams,
		Device:     &device.JetsonTX2NX,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	observed := make(map[int]int)
	results, err := m.ProcessStreams(frameSets, func(stream int, f *synth.Frame, res core.FrameResult) error {
		if res.Used < 0 || res.Used >= fx.Bundle.NumModels() {
			return errors.New("used model out of range")
		}
		mu.Lock()
		observed[stream]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < streams; s++ {
		if len(results[s]) != perStream {
			t.Fatalf("stream %d: %d results, want %d", s, len(results[s]), perStream)
		}
		if observed[s] != perStream {
			t.Fatalf("stream %d: observer saw %d frames, want %d", s, observed[s], perStream)
		}
	}

	agg := m.Stats()
	if agg.Frames != streams*perStream {
		t.Fatalf("aggregate frames %d, want %d", agg.Frames, streams*perStream)
	}
	cache := m.Cache()
	if cache.Lookups() != int64(streams*perStream) {
		t.Fatalf("cache lookups %d, want one per frame (%d)", cache.Lookups(), streams*perStream)
	}
	if agg.Cache.Hits+agg.Cache.Misses != cache.Lookups() {
		t.Fatalf("cache counters unbalanced: %+v vs %d lookups", agg.Cache, cache.Lookups())
	}
	if used := cache.Used(); used > cache.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", used, cache.Capacity())
	}

	var frames, switches int
	var tp, fp, fn int
	for s := 0; s < streams; s++ {
		ss := m.StreamStats(s)
		frames += ss.Frames
		switches += ss.Switches
		tp += ss.Detection.TP
		fp += ss.Detection.FP
		fn += ss.Detection.FN
		if dev := m.StreamDevice(s); dev == nil || dev.Inferences() == 0 {
			t.Fatalf("stream %d device simulator idle", s)
		}
	}
	if frames != agg.Frames || switches != agg.Switches ||
		tp != agg.Detection.TP || fp != agg.Detection.FP || fn != agg.Detection.FN {
		t.Fatalf("per-stream sums (%d,%d,%d,%d,%d) disagree with aggregate %+v",
			frames, switches, tp, fp, fn, agg)
	}
	if m.SimulatedMakespan() <= 0 || m.SimulatedMakespan() > agg.TotalLatency {
		t.Fatalf("makespan %v outside (0, total %v]", m.SimulatedMakespan(), agg.TotalLatency)
	}
}

// TestMultiRuntimeStreamsAreIsolated runs the same frame sequence on
// every stream of a wide-open cache (no contention): per-stream state
// must not leak, so all streams report identical stats.
func TestMultiRuntimeStreamsAreIsolated(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 80)[0]
	const streams = 3

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: streams,
		// Every model fits: cache behavior is identical for all
		// streams after each model's first admission.
		CacheSlots:       fx.Bundle.NumModels(),
		CacheShards:      1,
		SwitchHysteresis: 2,
		Workers:          streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm the shared cache with every model so each request is a
	// hit regardless of stream interleaving; any remaining divergence
	// between streams is then a per-stream state leak.
	for _, det := range fx.Bundle.Detectors {
		if _, _, err := m.Cache().Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]*synth.Frame, streams)
	for s := range sets {
		sets[s] = frames
	}
	results, err := m.ProcessStreams(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < streams; s++ {
		st0, st := m.StreamStats(0), m.StreamStats(s)
		if st0.Frames != st.Frames || st0.Switches != st.Switches || st0.Detection != st.Detection {
			t.Fatalf("stream %d stats diverged from stream 0:\n%+v\n%+v", s, st, st0)
		}
		for i := range results[0] {
			if results[0][i] != results[s][i] {
				t.Fatalf("stream %d frame %d diverged: %+v vs %+v", s, i, results[s][i], results[0][i])
			}
		}
	}
}

func TestMultiRuntimeValidation(t *testing.T) {
	fx := testutil.Shared(t)
	if _, err := core.NewMultiRuntime(&core.Bundle{}, core.MultiRuntimeConfig{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStreams() != 1 || m.Workers() != 1 {
		t.Fatalf("defaults: %d streams, %d workers", m.NumStreams(), m.Workers())
	}
	if _, err := m.ProcessStreams(make([][]*synth.Frame, 2), nil); err == nil {
		t.Fatal("stream count mismatch accepted")
	}
}

func TestMultiRuntimeObserverErrorAborts(t *testing.T) {
	fx := testutil.Shared(t)
	frameSets := streamFrames(t, 2, 30)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	_, err = m.ProcessStreams(frameSets, func(stream int, f *synth.Frame, res core.FrameResult) error {
		if stream == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("observer error not propagated: %v", err)
	}
}

func TestBundleCloneIsDeepAndEquivalent(t *testing.T) {
	fx := testutil.Shared(t)
	clone := fx.Bundle.Clone()
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
	if clone.Encoder == fx.Bundle.Encoder || clone.Decision == fx.Bundle.Decision {
		t.Fatal("clone shares compute state")
	}
	if clone.Encoder != clone.Decision.Encoder {
		t.Fatal("clone broke the shared-encoder invariant")
	}
	f := fx.Corpus.Frames(synth.Test)[0]
	a, b := fx.Bundle.Decision.Scores(f), clone.Decision.Scores(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision scores diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := range fx.Bundle.Detectors {
		if fx.Bundle.Detectors[i] == clone.Detectors[i] {
			t.Fatalf("detector %d shared", i)
		}
		if got, want := clone.Detectors[i].EvaluateFrame(f), fx.Bundle.Detectors[i].EvaluateFrame(f); got != want {
			t.Fatalf("detector %d diverged: %+v vs %+v", i, got, want)
		}
	}
	if fx.Bundle.Novelty(f) != clone.Novelty(f) {
		t.Fatal("novelty diverged")
	}
}
