package core_test

import (
	"errors"
	"sync"
	"testing"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/testutil"
)

// streamFrames deals the shared fixture's test frames into n
// equally-sized streams, round-robin so every stream sees a scene mix.
func streamFrames(t *testing.T, n, perStream int) [][]*synth.Frame {
	t.Helper()
	fx := testutil.Shared(t)
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		t.Fatal("fixture has no test frames")
	}
	// Frames are read-only inputs, so wrapping around the corpus (and
	// sharing frames between streams) is safe.
	out := make([][]*synth.Frame, n)
	for s := 0; s < n; s++ {
		for i := 0; i < perStream; i++ {
			out[s] = append(out[s], frames[(i*n+s)%len(frames)])
		}
	}
	return out
}

// TestMultiRuntimeSingleStreamMatchesRuntime is the determinism guard
// for the refactor: one stream through MultiRuntime (single shard by
// default) must produce frame-for-frame identical results to the
// original single-tenant Runtime on the same sequence, including
// simulated latency, hysteresis smoothing and cache behavior.
func TestMultiRuntimeSingleStreamMatchesRuntime(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 120)[0]

	for _, hysteresis := range []int{0, 3} {
		single, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           mustSim(device.JetsonTX2NX),
		})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          1,
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           &device.JetsonTX2NX,
		})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cache().NumShards() != 1 {
			t.Fatalf("1 stream defaulted to %d shards, want 1", multi.Cache().NumShards())
		}

		want := make([]core.FrameResult, 0, len(frames))
		for _, f := range frames {
			res, err := single.ProcessFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}
		got, err := multi.ProcessStreams([][]*synth.Frame{frames}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[0]) != len(want) {
			t.Fatalf("hysteresis %d: %d results, want %d", hysteresis, len(got[0]), len(want))
		}
		for i := range want {
			if got[0][i] != want[i] {
				t.Fatalf("hysteresis %d: frame %d diverged:\n multi %+v\nsingle %+v",
					hysteresis, i, got[0][i], want[i])
			}
		}

		ss, ms := single.Stats(), multi.Stats()
		if ss.Frames != ms.Frames || ss.Switches != ms.Switches ||
			ss.Cache != ms.Cache || ss.Detection != ms.Detection ||
			ss.TotalLatency != ms.TotalLatency {
			t.Fatalf("hysteresis %d: aggregate stats diverged:\n multi %+v\nsingle %+v", hysteresis, ms, ss)
		}
	}
}

// TestMultiRuntimeConcurrentStreams drives four streams over four
// workers sharing one cache, asserting the aggregate bookkeeping is
// exact whatever the interleaving: no frame lost, one cache lookup per
// frame, residency within capacity, and per-stream totals summing to
// the aggregate. Run with -race.
func TestMultiRuntimeConcurrentStreams(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 60
	frameSets := streamFrames(t, streams, perStream)

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: 4,
		Workers:    streams,
		Device:     &device.JetsonTX2NX,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	observed := make(map[int]int)
	results, err := m.ProcessStreams(frameSets, func(stream int, f *synth.Frame, res core.FrameResult) error {
		if res.Used < 0 || res.Used >= fx.Bundle.NumModels() {
			return errors.New("used model out of range")
		}
		mu.Lock()
		observed[stream]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < streams; s++ {
		if len(results[s]) != perStream {
			t.Fatalf("stream %d: %d results, want %d", s, len(results[s]), perStream)
		}
		if observed[s] != perStream {
			t.Fatalf("stream %d: observer saw %d frames, want %d", s, observed[s], perStream)
		}
	}

	agg := m.Stats()
	if agg.Frames != streams*perStream {
		t.Fatalf("aggregate frames %d, want %d", agg.Frames, streams*perStream)
	}
	cache := m.Cache()
	if cache.Lookups() != int64(streams*perStream) {
		t.Fatalf("cache lookups %d, want one per frame (%d)", cache.Lookups(), streams*perStream)
	}
	if agg.Cache.Hits+agg.Cache.Misses != cache.Lookups() {
		t.Fatalf("cache counters unbalanced: %+v vs %d lookups", agg.Cache, cache.Lookups())
	}
	if used := cache.Used(); used > cache.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", used, cache.Capacity())
	}

	var frames, switches int
	var tp, fp, fn int
	for s := 0; s < streams; s++ {
		ss := m.StreamStats(s)
		frames += ss.Frames
		switches += ss.Switches
		tp += ss.Detection.TP
		fp += ss.Detection.FP
		fn += ss.Detection.FN
		if dev := m.StreamDevice(s); dev == nil || dev.Inferences() == 0 {
			t.Fatalf("stream %d device simulator idle", s)
		}
	}
	if frames != agg.Frames || switches != agg.Switches ||
		tp != agg.Detection.TP || fp != agg.Detection.FP || fn != agg.Detection.FN {
		t.Fatalf("per-stream sums (%d,%d,%d,%d,%d) disagree with aggregate %+v",
			frames, switches, tp, fp, fn, agg)
	}
	if m.SimulatedMakespan() <= 0 || m.SimulatedMakespan() > agg.TotalLatency {
		t.Fatalf("makespan %v outside (0, total %v]", m.SimulatedMakespan(), agg.TotalLatency)
	}
}

// TestMultiRuntimeStreamsAreIsolated runs the same frame sequence on
// every stream of a wide-open cache (no contention): per-stream state
// must not leak, so all streams report identical stats.
func TestMultiRuntimeStreamsAreIsolated(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 80)[0]
	const streams = 3

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: streams,
		// Every model fits: cache behavior is identical for all
		// streams after each model's first admission.
		CacheSlots:       fx.Bundle.NumModels(),
		CacheShards:      1,
		SwitchHysteresis: 2,
		Workers:          streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm the shared cache with every model so each request is a
	// hit regardless of stream interleaving; any remaining divergence
	// between streams is then a per-stream state leak.
	for _, det := range fx.Bundle.Detectors {
		if _, _, err := m.Cache().Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]*synth.Frame, streams)
	for s := range sets {
		sets[s] = frames
	}
	results, err := m.ProcessStreams(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < streams; s++ {
		st0, st := m.StreamStats(0), m.StreamStats(s)
		if st0.Frames != st.Frames || st0.Switches != st.Switches || st0.Detection != st.Detection {
			t.Fatalf("stream %d stats diverged from stream 0:\n%+v\n%+v", s, st, st0)
		}
		for i := range results[0] {
			if results[0][i] != results[s][i] {
				t.Fatalf("stream %d frame %d diverged: %+v vs %+v", s, i, results[s][i], results[0][i])
			}
		}
	}
}

func TestMultiRuntimeValidation(t *testing.T) {
	fx := testutil.Shared(t)
	if _, err := core.NewMultiRuntime(&core.Bundle{}, core.MultiRuntimeConfig{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStreams() != 1 || m.Workers() != 1 {
		t.Fatalf("defaults: %d streams, %d workers", m.NumStreams(), m.Workers())
	}
	if _, err := m.ProcessStreams(make([][]*synth.Frame, 2), nil); err == nil {
		t.Fatal("stream count mismatch accepted")
	}
}

func TestMultiRuntimeObserverErrorAborts(t *testing.T) {
	fx := testutil.Shared(t)
	frameSets := streamFrames(t, 2, 30)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	_, err = m.ProcessStreams(frameSets, func(stream int, f *synth.Frame, res core.FrameResult) error {
		if stream == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("observer error not propagated: %v", err)
	}
}

// TestMultiRuntimeStreamsShareOneBundle pins the refactor's memory
// claim: N streams hold exactly one resident copy of every model. Each
// stream's runtime must reference the SAME bundle — and therefore the
// same frozen detector, encoder, and decision-head weights — as every
// other stream, not a clone.
func TestMultiRuntimeStreamsShareOneBundle(t *testing.T) {
	fx := testutil.Shared(t)
	const streams = 4
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: streams})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bundle() != fx.Bundle {
		t.Fatal("MultiRuntime cloned the bundle")
	}
	for s := 0; s < streams; s++ {
		sb := m.StreamBundle(s)
		if sb != fx.Bundle {
			t.Fatalf("stream %d runs on a different bundle copy", s)
		}
		for i, d := range sb.Detectors {
			if d != fx.Bundle.Detectors[i] {
				t.Fatalf("stream %d detector %d is a copy", s, i)
			}
			if d.Weights() != fx.Bundle.Detectors[i].Weights() {
				t.Fatalf("stream %d detector %d holds copied weights", s, i)
			}
		}
		if sb.Encoder.Weights != fx.Bundle.Encoder.Weights {
			t.Fatalf("stream %d encoder weights copied", s)
		}
		if sb.Decision.Head != fx.Bundle.Decision.Head {
			t.Fatalf("stream %d decision head copied", s)
		}
	}
}

// TestSharedBundleStreamsMatchSequential drives N streams over one
// UN-cloned bundle concurrently and checks every stream's frame
// results are identical to a sequential single-runtime pass over the
// same frames. Both sides run against a pre-warmed all-models cache so
// admission order cannot differ; any divergence is then shared mutable
// state inside the supposedly immutable models. Run with -race.
func TestSharedBundleStreamsMatchSequential(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 80)[0]
	const streams = 4
	slots := fx.Bundle.NumModels()

	seqStore := modelcache.MustNew(slots, modelcache.LFU)
	for _, det := range fx.Bundle.Detectors {
		if _, _, err := seqStore.Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
	single, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		Store:            seqStore,
		SwitchHysteresis: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]core.FrameResult, 0, len(frames))
	for _, f := range frames {
		res, err := single.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:          streams,
		CacheSlots:       slots,
		CacheShards:      1,
		SwitchHysteresis: 2,
		Workers:          streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range fx.Bundle.Detectors {
		if _, _, err := m.Cache().Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]*synth.Frame, streams)
	for s := range sets {
		sets[s] = frames
	}
	results, err := m.ProcessStreams(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		if len(results[s]) != len(want) {
			t.Fatalf("stream %d: %d results, want %d", s, len(results[s]), len(want))
		}
		for i := range want {
			if results[s][i] != want[i] {
				t.Fatalf("stream %d frame %d diverged from sequential:\nconcurrent %+v\nsequential %+v",
					s, i, results[s][i], want[i])
			}
		}
	}
}
