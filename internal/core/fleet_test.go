package core_test

import (
	"strings"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/testutil"
)

// tightProfile is a synthetic device whose model-cache byte capacity
// sits between the quantized and full-precision repertoire sizes, so a
// planner that respects memory ceilings MUST pick a quantized variant.
// (The shared fixture's fp32 repertoire serializes to ~18.9 KB sizer
// units and each quantized variant to ~2.7 KB; 64 MB of GPU memory is
// 6710 sizer units — q fits, fp32 does not.)
func tightProfile(memMB float64) device.Profile {
	return device.Profile{
		Name:               "tight",
		GPUMemoryMB:        memMB,
		IOBandwidthMBps:    100,
		FrameworkInitMs:    100,
		DispatchOverheadMs: 1,
		Modes: []device.PowerMode{
			{Name: "5W", BudgetW: 5, Cores: 2, GFLOPS: 300, IdleW: 1, ActiveW: 4.5},
		},
	}
}

// sameRunStats compares the scalar surface of two RunStats (the slice
// fields are per-model histograms; reflect.DeepEqual would hide which
// scalar diverged, and the scalars already cover every execution-path
// difference we guard against).
func sameRunStats(a, b core.RunStats) bool {
	return a.Frames == b.Frames && a.Switches == b.Switches &&
		a.Detection == b.Detection && a.TotalLatency == b.TotalLatency &&
		a.Cache == b.Cache && a.MissRate == b.MissRate &&
		a.ColdMisses == b.ColdMisses && a.FetchStall == b.FetchStall
}

// repertoireBytes sums the serialized detector sizes of a bundle — the
// planner's residency cost for that variant.
func repertoireBytes(b *core.Bundle) int64 {
	var total int64
	for _, d := range b.Detectors {
		total += d.SizeBytes()
	}
	return total
}

// TestMultiRuntimeDeviceShimMatchesFleet is the back-compat guarantee:
// the deprecated single-profile Device field must behave exactly like
// an explicit uniform Fleet of the same profile — frame-for-frame
// results and aggregate stats bit-identical on the same input.
func TestMultiRuntimeDeviceShimMatchesFleet(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 60
	frameSets := streamFrames(t, streams, perStream)

	run := func(cfg core.MultiRuntimeConfig) ([][]core.FrameResult, core.RunStats) {
		cfg.Streams = streams
		cfg.CacheSlots = 4
		cfg.SwitchHysteresis = 2
		m, err := core.NewMultiRuntime(fx.Bundle, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results, m.Stats()
	}

	oldResults, oldStats := run(core.MultiRuntimeConfig{Device: &device.JetsonTX2NX})
	newResults, newStats := run(core.MultiRuntimeConfig{Fleet: device.UniformFleet(device.JetsonTX2NX, streams)})

	if !sameRunStats(oldStats, newStats) {
		t.Fatalf("aggregate stats diverged:\nDevice shim %+v\nFleet       %+v", oldStats, newStats)
	}
	for s := 0; s < streams; s++ {
		for i := range oldResults[s] {
			if oldResults[s][i] != newResults[s][i] {
				t.Fatalf("stream %d frame %d diverged:\nDevice shim %+v\nFleet       %+v",
					s, i, oldResults[s][i], newResults[s][i])
			}
		}
	}
}

// TestMultiRuntimeMixedFleetBatchedMatchesUnbatched extends the batch
// equivalence harness to a heterogeneous fleet: six streams split
// across Nano, TX2 NX and laptop profiles, batch on vs. off, one
// pre-warmed single-shard cache. Batching groups streams by resolved
// bundle and runs the shared backbone in global stream order, so the
// two modes must stay bit-identical per frame and per stream even when
// profile classes (and their simulated latencies) differ.
func TestMultiRuntimeMixedFleetBatchedMatchesUnbatched(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 6, 50
	frameSets := streamFrames(t, streams, perStream)
	fleet, err := device.BuildFleet("nano:2,tx2:2,laptop:2", streams, 42)
	if err != nil {
		t.Fatal(err)
	}

	run := func(batch bool) ([][]core.FrameResult, []core.RunStats) {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          streams,
			CacheSlots:       fx.Bundle.NumModels(),
			CacheShards:      1,
			SwitchHysteresis: 2,
			Fleet:            fleet,
			Batch:            batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		prewarmCache(t, m.Cache(), fx.Bundle)
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]core.RunStats, streams)
		for s := range stats {
			stats[s] = m.StreamStats(s)
		}
		return results, stats
	}

	batched, bstats := run(true)
	plain, pstats := run(false)
	for s := 0; s < streams; s++ {
		if !sameRunStats(bstats[s], pstats[s]) {
			t.Fatalf("stream %d (%s) stats diverged:\nbatched   %+v\nunbatched %+v",
				s, fleet[s].Class, bstats[s], pstats[s])
		}
		for i := range plain[s] {
			if batched[s][i] != plain[s][i] {
				t.Fatalf("stream %d (%s) frame %d diverged:\nbatched   %+v\nunbatched %+v",
					s, fleet[s].Class, i, batched[s][i], plain[s][i])
			}
		}
	}
}

// TestPlannerRespectsMemoryCeiling pins the hard constraint: a device
// whose byte capacity cannot hold the full-precision repertoire must be
// planned onto a quantized variant whose repertoire fits, while a roomy
// device on the same fleet keeps full precision.
func TestPlannerRespectsMemoryCeiling(t *testing.T) {
	fx := testutil.Shared(t)
	tight := tightProfile(64)
	fleet := device.Fleet{
		{Class: "tight", Profile: tight, Mode: tight.DefaultMode},
		{Class: "tx2", Profile: device.JetsonTX2NX, Mode: device.JetsonTX2NX.DefaultMode},
	}
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    2,
		CacheSlots: fx.Bundle.NumModels(),
		Fleet:      fleet,
		Plan:       &core.PlanConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if v := m.StreamVariant(0); v == "fp32" || v == "" {
		t.Fatalf("tight stream planned onto %q; want a quantized variant", v)
	}
	// The chosen variant's repertoire must fit the device's own byte
	// capacity (GPUMemoryMB scaled into cache sizer units), not the
	// fleet-wide maximum.
	ceiling := int64(tight.GPUMemoryMB * float64(1<<20) / device.BytesScale)
	if got := repertoireBytes(m.StreamBundle(0)); got > ceiling {
		t.Fatalf("tight stream repertoire %d bytes exceeds its %d-byte ceiling", got, ceiling)
	}
	if v := m.StreamVariant(1); v != "fp32" {
		t.Fatalf("roomy TX2 stream planned onto %q; want fp32", v)
	}
	if got := repertoireBytes(m.StreamBundle(0)); got >= repertoireBytes(m.StreamBundle(1)) {
		t.Fatal("quantized repertoire not smaller than full precision")
	}

	// A device too small for even the narrowest variant is a
	// configuration error, not a silent degradation.
	hopeless := tightProfile(16)
	_, err = core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    1,
		CacheSlots: fx.Bundle.NumModels(),
		Fleet:      device.Fleet{{Class: "hopeless", Profile: hopeless, Mode: 0}},
		Plan:       &core.PlanConfig{},
	})
	if err == nil || !strings.Contains(err.Error(), "fits") {
		t.Fatalf("16MB device should fail construction with a no-variant-fits error, got %v", err)
	}
}

// TestPlannerLatencyBudgetSelectsQuantized drives selection through the
// latency axis: a budget the Nano cannot meet at full precision but can
// meet quantized must step that class down while the (much faster) TX2
// stays at fp32. The planned fleet's simulated latency must then beat
// one-size-fits-all fp32 on the same frames.
func TestPlannerLatencyBudgetSelectsQuantized(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 40
	frameSets := streamFrames(t, streams, perStream)
	fleet, err := device.BuildFleet("nano:2,tx2:2", streams, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Nano fp32 estimate ≈ 37ms (decide + worst detector + 2 dispatch
	// overheads at 236 GFLOPS); quantized detectors clear 30ms easily,
	// while TX2 fp32 sits near 6ms.
	budget := 30 * time.Millisecond

	build := func(plan *core.PlanConfig) *core.MultiRuntime {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: 4 * fx.Bundle.NumModels(),
			Fleet:      fleet,
			Plan:       plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	planned := build(&core.PlanConfig{LatencyBudget: budget})
	defer planned.Close()
	for i, a := range fleet {
		v := planned.StreamVariant(i)
		switch a.Class {
		case "nano":
			if v == "fp32" {
				t.Fatalf("stream %d (nano) kept fp32 under a %v budget", i, budget)
			}
		case "tx2":
			if v != "fp32" {
				t.Fatalf("stream %d (tx2) planned onto %q; want fp32", i, v)
			}
		}
	}

	uniform := build(nil)
	defer uniform.Close()
	if _, err := planned.ProcessStreams(frameSets, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := uniform.ProcessStreams(frameSets, nil); err != nil {
		t.Fatal(err)
	}
	for i, a := range fleet {
		if a.Class != "nano" {
			continue
		}
		p, u := planned.StreamStats(i).TotalLatency, uniform.StreamStats(i).TotalLatency
		if p >= u {
			t.Fatalf("stream %d (nano): planned latency %v not better than one-size-fits-all %v", i, p, u)
		}
	}
}

// TestMultiRuntimeFleetConfigErrors pins the construction-time guard
// rails: a fleet sized for the wrong stream count, planning without any
// device fleet, and manual bundle swaps while the planner owns variant
// assignment are all refused.
func TestMultiRuntimeFleetConfigErrors(t *testing.T) {
	fx := testutil.Shared(t)

	_, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: 3,
		Fleet:   device.UniformFleet(device.JetsonNano, 2),
	})
	if err == nil || !strings.Contains(err.Error(), "assignments") {
		t.Fatalf("fleet/stream mismatch not refused: %v", err)
	}

	_, err = core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: 2,
		Plan:    &core.PlanConfig{},
	})
	if err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("plan without fleet not refused: %v", err)
	}

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    2,
		CacheSlots: fx.Bundle.NumModels(),
		Fleet:      device.UniformFleet(device.JetsonTX2NX, 2),
		Plan:       &core.PlanConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.SwapStreamBundle(0, fx.Bundle); err == nil {
		t.Fatal("SwapStreamBundle allowed while planner owns variants")
	}
	if err := m.SwapAllBundles(fx.Bundle); err == nil {
		t.Fatal("SwapAllBundles allowed while planner owns variants")
	}
}

// TestCheckpointRefusesForeignFleet pins checkpoint portability: a
// checkpoint captured on one fleet layout restores onto an identical
// layout but is refused by a fleet with different classes (stream
// indices would map to different hardware) or a different stream count.
func TestCheckpointRefusesForeignFleet(t *testing.T) {
	fx := testutil.Shared(t)
	build := func(spec string, streams int) *core.MultiRuntime {
		fleet, err := device.BuildFleet(spec, streams, 11)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: fx.Bundle.NumModels(),
			Fleet:      fleet,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		return m
	}

	src := build("nano:1,tx2:1", 2)
	prewarmCache(t, src.Cache(), fx.Bundle)
	cp := src.CaptureCheckpoint()
	if len(cp.Fleet) != 2 {
		t.Fatalf("checkpoint fleet section has %d classes, want 2", len(cp.Fleet))
	}

	same := build("nano:1,tx2:1", 2)
	if warmed, err := same.RestoreCheckpoint(cp); err != nil || warmed == 0 {
		t.Fatalf("same-layout restore failed: warmed=%d err=%v", warmed, err)
	}

	foreign := build("laptop:2", 2)
	if _, err := foreign.RestoreCheckpoint(cp); err == nil {
		t.Fatal("restore onto a different fleet layout not refused")
	}

	shorter := build("nano:1", 1)
	if _, err := shorter.RestoreCheckpoint(cp); err == nil {
		t.Fatal("restore onto a different stream count not refused")
	}

	// Checkpoints without a fleet section (v1 files, single-device
	// runs) restore anywhere.
	cp.Fleet = nil
	if _, err := foreign.RestoreCheckpoint(cp); err != nil {
		t.Fatalf("fleet-less checkpoint refused: %v", err)
	}
}
