package core_test

import (
	"testing"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

func TestNewUncertaintyBufferValidation(t *testing.T) {
	if _, err := core.NewUncertaintyBuffer(0, 10); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := core.NewUncertaintyBuffer(-1, 10); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := core.NewUncertaintyBuffer(1.5, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestUncertaintyBufferFlagsLowConfidence(t *testing.T) {
	buf, err := core.NewUncertaintyBuffer(1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	fx := testutil.Shared(t)
	f := fx.Corpus.Frames(synth.Test)[0]
	if buf.Observe(f, core.FrameResult{Novelty: 0.2}) {
		t.Fatal("in-distribution frame flagged")
	}
	for i := 0; i < 5; i++ {
		if !buf.Observe(f, core.FrameResult{Novelty: 3.0}) {
			t.Fatal("novel frame not flagged")
		}
	}
	if buf.Len() != 3 {
		t.Fatalf("buffer size %d, want capacity clamp to 3", buf.Len())
	}
	wantRate := 5.0 / 6.0
	if r := buf.FlagRate(); r < wantRate-1e-9 || r > wantRate+1e-9 {
		t.Fatalf("flag rate %v, want %v", r, wantRate)
	}
}

func TestUncertaintyBufferEmptyRate(t *testing.T) {
	buf, err := core.NewUncertaintyBuffer(1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buf.FlagRate() != 0 {
		t.Fatal("empty buffer flag rate should be 0")
	}
}

// expansionScene is a scene absent from the fixture corpus profiles:
// KITTI/BDD/SHD never sample foggy toll booths at night.
var expansionScene = synth.Scene{Weather: synth.Foggy, Location: synth.TollBooth, Time: synth.Night}

func TestExpandRepertoireImprovesOnNovelScene(t *testing.T) {
	fx := testutil.Shared(t)
	rng := xrand.New(4242)
	novel := make([]*synth.Frame, 80)
	for i := range novel {
		novel[i] = fx.World.GenerateFrame(expansionScene, 1, rng)
	}
	holdout := make([]*synth.Frame, 40)
	for i := range holdout {
		holdout[i] = fx.World.GenerateFrame(expansionScene, 1, rng)
	}

	before := bestFixedF1(fx.Bundle.Detectors, holdout)

	expanded, err := core.ExpandRepertoire(fx.Bundle, novel, fx.Corpus.Frames(synth.Train), core.ExpandConfig{
		Seed:     4243,
		Train:    detect.TrainConfig{Epochs: 20},
		Sampling: sampling.Config{Kappa: 300, AcceptF1: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if expanded.NumModels() != fx.Bundle.NumModels()+1 {
		t.Fatalf("expanded to %d models, want +1", expanded.NumModels())
	}
	// Original bundle untouched.
	if err := fx.Bundle.Validate(); err != nil {
		t.Fatal(err)
	}
	if fx.Bundle.Decision.N != fx.Bundle.NumModels() {
		t.Fatal("original decision head mutated")
	}
	// Provenance of the new model.
	last := expanded.Infos[len(expanded.Infos)-1]
	if last.Level != 0 || last.Cluster != -1 {
		t.Fatalf("continual provenance not marked: %+v", last)
	}
	if len(last.TrainScenes) == 0 || last.TrainScenes[0] != expansionScene.Index() {
		t.Fatalf("new model scenes: %v", last.TrainScenes)
	}

	// The expanded runtime must beat the old repertoire's best fixed
	// model on the novel scene.
	rt, err := core.NewRuntime(expanded, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	var agg stats.PRF1
	newIdx := expanded.NumModels() - 1
	usedNew := 0
	for _, f := range holdout {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		agg = agg.Add(res.Metrics)
		if res.Desired == newIdx {
			usedNew++
		}
	}
	if agg.F1 <= before {
		t.Fatalf("expansion did not help: F1 %v vs best-old %v", agg.F1, before)
	}
	// The decision model must route most novel-scene frames to the new
	// specialist.
	if float64(usedNew) < 0.5*float64(len(holdout)) {
		t.Fatalf("new model desired on only %d/%d novel frames", usedNew, len(holdout))
	}
}

func TestExpandRepertoireValidation(t *testing.T) {
	fx := testutil.Shared(t)
	train := fx.Corpus.Frames(synth.Train)
	rng := xrand.New(1)
	few := []*synth.Frame{fx.World.GenerateFrame(expansionScene, 1, rng)}

	if _, err := core.ExpandRepertoire(&core.Bundle{}, few, train, core.ExpandConfig{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
	if _, err := core.ExpandRepertoire(fx.Bundle, few, train, core.ExpandConfig{MinFrames: 30}); err == nil {
		t.Fatal("too-few flagged frames accepted")
	}
	many := make([]*synth.Frame, 40)
	for i := range many {
		many[i] = fx.World.GenerateFrame(expansionScene, 1, rng)
	}
	if _, err := core.ExpandRepertoire(fx.Bundle, many, nil, core.ExpandConfig{}); err == nil {
		t.Fatal("empty train frames accepted")
	}
}

func bestFixedF1(dets []*detect.Detector, frames []*synth.Frame) float64 {
	best := 0.0
	for _, d := range dets {
		if f1 := d.EvaluateFrames(frames).F1; f1 > best {
			best = f1
		}
	}
	return best
}

func TestQuantizeBundleRoundtrip(t *testing.T) {
	fx := testutil.Shared(t)
	qb, err := core.QuantizeBundle(fx.Bundle, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qb.NumModels() != fx.Bundle.NumModels() {
		t.Fatal("model count changed")
	}
	ratio := float64(fx.Bundle.RepertoireWeightBytes()) / float64(qb.RepertoireWeightBytes())
	if ratio < 6 {
		t.Fatalf("compression %v, want ~8x", ratio)
	}
	// Encoder/decision are shared, untouched.
	if qb.Encoder != fx.Bundle.Encoder || qb.Decision != fx.Bundle.Decision {
		t.Fatal("encoder/decision should be shared")
	}
	// Quantized bundle still runs.
	rt, err := core.NewRuntime(qb, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fx.Corpus.Frames(synth.Test)[:10] {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := core.QuantizeBundle(fx.Bundle, 99); err == nil {
		t.Fatal("invalid bits accepted")
	}
}

func TestSwitchHysteresisReducesSwitches(t *testing.T) {
	// Hysteresis is meant for temporally coherent streams (a real
	// camera), so test on one contiguous clip rather than the
	// interleaved test split.
	fx := testutil.Shared(t)
	profile := synth.DefaultProfiles(1)[1]
	profile.FramesPerClip = 300
	clip := fx.World.GenerateClip(profile, 7777, xrand.New(7778))
	run := func(h int) core.RunStats {
		rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3, SwitchHysteresis: h})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range clip.Frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		return rt.Stats()
	}
	plain := run(1)
	smooth := run(3)
	if smooth.Switches >= plain.Switches {
		t.Fatalf("hysteresis did not reduce switches: %d vs %d", smooth.Switches, plain.Switches)
	}
	// On a coherent stream, accuracy must not collapse.
	if smooth.Detection.F1 < plain.Detection.F1-0.08 {
		t.Fatalf("hysteresis cost too much F1: %v vs %v", smooth.Detection.F1, plain.Detection.F1)
	}
}
