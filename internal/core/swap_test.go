package core_test

import (
	"testing"

	"anole/internal/core"
	"anole/internal/testutil"
)

// TestMultiRuntimeSwapStreamBundleCanaryThenPromote walks the fleet
// through the rollout sequence the adaptation loop drives: deploy a
// candidate bundle on one canary stream (others untouched), process a
// mixed fleet, roll the canary back, then promote the candidate
// everywhere. The quantized twin of the fixture bundle is a cheap,
// structurally different stand-in for a retrained generation.
func TestMultiRuntimeSwapStreamBundleCanaryThenPromote(t *testing.T) {
	fx := testutil.Shared(t)
	candidate, err := core.QuantizeBundle(fx.Bundle, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: 2, CacheSlots: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Canary: stream 1 runs the candidate, stream 0 and the fleet
	// reference stay on the incumbent.
	if err := m.SwapStreamBundle(1, candidate); err != nil {
		t.Fatal(err)
	}
	if m.StreamBundle(1) != candidate || m.StreamBundle(0) != fx.Bundle || m.Bundle() != fx.Bundle {
		t.Fatal("canary swap leaked past stream 1")
	}
	// A mixed fleet must still process every frame.
	sets := streamFrames(t, 2, 30)
	results, err := m.ProcessStreams(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s, rs := range results {
		if len(rs) != 30 {
			t.Fatalf("mixed fleet: stream %d produced %d results, want 30", s, len(rs))
		}
	}

	// Rolling the canary back to the fleet bundle restores a uniform
	// fleet without touching the shared reference.
	if err := m.SwapStreamBundle(1, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	if m.StreamBundle(1) != fx.Bundle || m.Bundle() != fx.Bundle {
		t.Fatal("canary rollback did not restore the incumbent")
	}

	// Promote: every stream and the fleet reference adopt the candidate.
	if err := m.SwapAllBundles(candidate); err != nil {
		t.Fatal(err)
	}
	if m.Bundle() != candidate {
		t.Fatal("promotion did not adopt the candidate as the fleet bundle")
	}
	for s := 0; s < m.NumStreams(); s++ {
		if m.StreamBundle(s) != candidate {
			t.Fatalf("stream %d still on the old bundle after promotion", s)
		}
	}
	if _, err := m.ProcessStreams(streamFrames(t, 2, 20), nil); err != nil {
		t.Fatal(err)
	}

	// Guard rails.
	if err := m.SwapStreamBundle(5, candidate); err == nil {
		t.Fatal("swap on an out-of-range stream accepted")
	}
	if err := m.SwapStreamBundle(-1, candidate); err == nil {
		t.Fatal("swap on a negative stream accepted")
	}
	if err := m.SwapAllBundles(&core.Bundle{}); err == nil {
		t.Fatal("promotion of an invalid bundle accepted")
	}
}

// TestMultiRuntimePurgeStaleModels pins the post-promotion cleanup:
// cached models the fleet bundle no longer references are evicted,
// models it does reference survive, and a second purge finds nothing.
func TestMultiRuntimePurgeStaleModels(t *testing.T) {
	fx := testutil.Shared(t)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: 1, CacheSlots: fx.Bundle.NumModels() + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, det := range fx.Bundle.Detectors {
		if _, _, err := m.Cache().Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Two residents from a withdrawn generation.
	for _, stale := range []string{"M_old_a", "M_old_b"} {
		if _, _, err := m.Cache().Request(stale, 1); err != nil {
			t.Fatal(err)
		}
	}

	if purged := m.PurgeStaleModels(); purged != 2 {
		t.Fatalf("purged %d models, want 2", purged)
	}
	for _, stale := range []string{"M_old_a", "M_old_b"} {
		if m.Cache().Contains(stale) {
			t.Fatalf("stale model %s survived the purge", stale)
		}
	}
	for _, det := range fx.Bundle.Detectors {
		if !m.Cache().Contains(det.Name) {
			t.Fatalf("fleet model %s evicted by the purge", det.Name)
		}
	}
	if purged := m.PurgeStaleModels(); purged != 0 {
		t.Fatalf("second purge removed %d models, want 0", purged)
	}
}
