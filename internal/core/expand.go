package core

import (
	"fmt"

	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// This file implements the paper's remedy for problem case 3 (§II-B): a
// test sample x outside every model's distribution has no best-fit model
// M*; "a remedy for this case is to train new models to deal with x and
// the like in the future". The device flags low-confidence frames online
// (UncertaintyBuffer), ships them back to the cloud with the next sync,
// and the cloud expands the repertoire (ExpandRepertoire): a new
// compressed model is trained on the flagged distribution and the
// decision head is retrained with one more class.

// UncertaintyBuffer collects frames outside every known scene —
// candidate members of U − ∪Ψᵢ. Softmax confidence is notoriously
// overconfident out of distribution, so flagging uses the bundle's
// calibrated Novelty score (embedding distance to the nearest known
// scene centroid). It is not safe for concurrent use.
type UncertaintyBuffer struct {
	// Threshold is the novelty score above which a frame is flagged;
	// 1.0 is the calibrated in-scene 95th percentile, so useful
	// thresholds sit a bit above it (e.g. 1.5).
	Threshold float64
	// Capacity bounds the buffer; once full, new flagged frames are
	// dropped (the device has bounded storage).
	Capacity int

	frames  []*synth.Frame
	flagged int
	seen    int
}

// NewUncertaintyBuffer returns a buffer flagging frames whose novelty
// exceeds threshold, keeping at most capacity of them.
func NewUncertaintyBuffer(threshold float64, capacity int) (*UncertaintyBuffer, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("core: uncertainty threshold %v must be positive", threshold)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: uncertainty capacity %d", capacity)
	}
	return &UncertaintyBuffer{Threshold: threshold, Capacity: capacity}, nil
}

// Observe inspects one processed frame and buffers it when its novelty
// exceeds the threshold. It reports whether the frame was flagged.
func (u *UncertaintyBuffer) Observe(f *synth.Frame, res FrameResult) bool {
	u.seen++
	if res.Novelty <= u.Threshold {
		return false
	}
	u.flagged++
	if len(u.frames) < u.Capacity {
		u.frames = append(u.frames, f)
	}
	return true
}

// Frames returns the buffered frames (shared slice; treat as read-only).
func (u *UncertaintyBuffer) Frames() []*synth.Frame { return u.frames }

// FlagRate returns the fraction of observed frames that were flagged.
func (u *UncertaintyBuffer) FlagRate() float64 {
	if u.seen == 0 {
		return 0
	}
	return float64(u.flagged) / float64(u.seen)
}

// Len returns the number of buffered frames.
func (u *UncertaintyBuffer) Len() int { return len(u.frames) }

// ExpandConfig controls a repertoire expansion.
type ExpandConfig struct {
	// Seed roots the expansion's randomness.
	Seed uint64
	// Train configures the new compressed model's training (its RNG is
	// derived from Seed).
	Train detect.TrainConfig
	// Sampling configures the decision-training-set rebuild; zero
	// values inherit sensible defaults.
	Sampling sampling.Config
	// Decision configures the decision-head retraining.
	Decision decision.Config
	// MinFrames is the minimum buffered-frame count to justify a new
	// model (default 30).
	MinFrames int
}

// ExpandRepertoire is the cloud-side half of the remedy: train a new
// compressed model on the flagged frames, rebuild the balanced decision
// training set over the n+1 models (existing pools from trainFrames, the
// new pool from the flagged frames), retrain the decision head on the
// frozen encoder, and return a new bundle. The input bundle is not
// modified; its detectors and encoder are shared by the new bundle.
func ExpandRepertoire(b *Bundle, flagged, trainFrames []*synth.Frame, cfg ExpandConfig) (*Bundle, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinFrames <= 0 {
		cfg.MinFrames = 30
	}
	if len(flagged) < cfg.MinFrames {
		return nil, fmt.Errorf("core: %d flagged frames, need at least %d", len(flagged), cfg.MinFrames)
	}
	if len(trainFrames) == 0 {
		return nil, fmt.Errorf("core: no training frames for pool rebuild")
	}

	// Train the new specialist on the flagged distribution. (In a real
	// deployment these frames are labeled cloud-side; the synthetic
	// frames carry ground truth.)
	rng := xrand.NewLabeled(cfg.Seed, "expand-detector")
	tc := cfg.Train
	tc.RNG = rng
	newDet := detect.NewDetector(fmt.Sprintf("M_%d", b.NumModels()+1), detect.Compressed, b.FeatDim, rng)
	if err := newDet.Train(flagged, nil, tc); err != nil {
		return nil, fmt.Errorf("core: expand: %w", err)
	}

	detectors := make([]*detect.Detector, 0, b.NumModels()+1)
	detectors = append(detectors, b.Detectors...)
	detectors = append(detectors, newDet)

	// Rebuild pools: existing models keep their scene pools; the new
	// model's pool is the flagged set.
	pools := make([]sampling.Pool, 0, len(detectors))
	for i := range b.Detectors {
		frames := poolOf(b.Infos[i].TrainScenes, trainFrames)
		if len(frames) == 0 {
			frames = trainFrames
		}
		pools = append(pools, sampling.Pool{ModelIdx: i, Frames: frames})
	}
	pools = append(pools, sampling.Pool{ModelIdx: len(detectors) - 1, Frames: flagged})

	sampCfg := cfg.Sampling
	sampCfg.RNG = xrand.NewLabeled(cfg.Seed, "expand-sampling")
	sampled, err := sampling.Adaptive(detectors, pools, sampCfg)
	if err != nil {
		return nil, fmt.Errorf("core: expand: %w", err)
	}
	if len(sampled.Samples) == 0 {
		return nil, fmt.Errorf("core: expand: sampling accepted nothing; lower Sampling.AcceptF1")
	}

	decCfg := cfg.Decision
	decCfg.RNG = xrand.NewLabeled(cfg.Seed, "expand-decision")
	dec, err := decision.Train(b.Encoder, sampled.Samples, len(detectors), decCfg)
	if err != nil {
		return nil, fmt.Errorf("core: expand: %w", err)
	}

	// Record the new model's dominant scenes for provenance.
	newScenes := scenesOf(flagged)
	infos := make([]ModelInfo, 0, len(detectors))
	infos = append(infos, b.Infos...)
	infos = append(infos, ModelInfo{
		Name:        newDet.Name,
		Level:       0, // level 0 marks continual-expansion origin
		Cluster:     -1,
		TrainScenes: newScenes,
		ValF1:       newDet.EvaluateFrames(flagged).F1,
	})

	out := &Bundle{
		Encoder:      b.Encoder,
		Decision:     dec,
		Detectors:    detectors,
		Infos:        infos,
		FeatDim:      b.FeatDim,
		Centroids:    b.Centroids,
		NoveltyScale: b.NoveltyScale,
	}
	// The new specialist's scenes are now known: fold their centroid in
	// so the same scene is not re-flagged as novel.
	if len(out.Centroids) > 0 {
		centroid := tensor.NewVector(b.Encoder.EmbedDim())
		for _, f := range flagged {
			centroid.AddScaled(1, b.Encoder.Embed(f))
		}
		centroid.Scale(1 / float64(len(flagged)))
		out.Centroids = append(append([]tensor.Vector(nil), b.Centroids...), centroid)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func poolOf(scenes []int, frames []*synth.Frame) []*synth.Frame {
	in := make(map[int]bool, len(scenes))
	for _, s := range scenes {
		in[s] = true
	}
	var out []*synth.Frame
	for _, f := range frames {
		if in[f.Scene.Index()] {
			out = append(out, f)
		}
	}
	return out
}

func scenesOf(frames []*synth.Frame) []int {
	seen := make(map[int]bool)
	var out []int
	for _, f := range frames {
		idx := f.Scene.Index()
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}
