package core_test

import (
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/faults"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// faultyLinkConfig builds a prefetch.Config whose link is wrapped in a
// fault injector with no random rates — outages are scripted through the
// returned faults.Link — and whose demand path fails fast when the link
// is down, so degraded mode engages instead of stalling frames.
func faultyLinkConfig(t *testing.T, b *core.Bundle, topK int) (*prefetch.Config, *faults.Link) {
	t.Helper()
	link, err := netsim.NewLink(netsim.DefaultConfig(1), xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	flink := faults.WrapLink(link, faults.Config{Seed: 1})
	lf, err := prefetch.NewLinkFetcher(flink, core.PrefetchModels(b), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lf.SetDemandDownLimit(0)
	return &prefetch.Config{Fetcher: lf, TopK: topK}, flink
}

// cyclicFrames repeats the test split to the requested length.
func cyclicFrames(t *testing.T, n int) []*synth.Frame {
	t.Helper()
	fx := testutil.Shared(t)
	base := fx.Corpus.Frames(synth.Test)
	if len(base) == 0 {
		t.Fatal("fixture has no test frames")
	}
	out := make([]*synth.Frame, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

func TestRuntimeDegradedModeServesEveryFrame(t *testing.T) {
	fx := testutil.Shared(t)
	pfCfg, flink := faultyLinkConfig(t, fx.Bundle, 2)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots:          1,
		Prefetch:            pfCfg,
		DegradedRetryFrames: 2,
		DegradedRetryCap:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	frames := cyclicFrames(t, 200)

	// Warm up on a healthy link, then kill it.
	const warmup, outage = 10, 80
	for _, f := range frames[:warmup] {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	flink.ForceOutage(outage)
	served := 0
	for _, f := range frames[warmup : warmup+outage] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatalf("frame dropped during outage: %v", err)
		}
		served++
		if res.Degraded && res.Used == res.Desired {
			t.Fatal("degraded frame claims to have served the decided model")
		}
	}
	if served != outage {
		t.Fatalf("served %d of %d outage frames", served, outage)
	}
	st := rt.Stats()
	if st.DegradedFrames == 0 {
		t.Fatal("no degraded frames across an 80-frame outage with a 1-slot cache")
	}
	if st.FallbackServed < st.DegradedFrames {
		t.Fatalf("fallback served %d < degraded %d: every degraded frame is a fallback",
			st.FallbackServed, st.DegradedFrames)
	}

	// The outage has been consumed; recovery to the decided model must be
	// bounded by the backoff cap (8 frames) plus the probe frame itself.
	recovered := -1
	for i, f := range frames[warmup+outage:] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded && res.Used == res.Desired {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatal("never recovered to the decided model after the outage")
	}
	if recovered > 8+1 {
		t.Fatalf("recovery took %d frames, want <= cap(8)+1", recovered)
	}
}

func TestRuntimeDegradedBackoffSkipsLinkProbes(t *testing.T) {
	fx := testutil.Shared(t)
	pfCfg, flink := faultyLinkConfig(t, fx.Bundle, 0)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots:          1,
		Prefetch:            pfCfg,
		DegradedRetryFrames: 2,
		DegradedRetryCap:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	frames := cyclicFrames(t, 160)

	const warmup = 10
	for _, f := range frames[:warmup] {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	probesBefore := rt.Stats().ColdMisses
	flink.ForceOutage(1 << 20) // permanent for this test
	for _, f := range frames[warmup:] {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatalf("frame dropped during outage: %v", err)
		}
	}
	st := rt.Stats()
	probes := st.ColdMisses - probesBefore
	if st.DegradedFrames == 0 {
		t.Fatal("no degraded frames under a permanent outage")
	}
	if probes == 0 {
		t.Fatal("backoff never probed the link at all")
	}
	// Exponential backoff (cap 8) must make probes rare relative to
	// degraded frames: without it every degraded frame would probe.
	if probes*2 >= st.DegradedFrames {
		t.Fatalf("%d probes for %d degraded frames: backoff not engaging", probes, st.DegradedFrames)
	}
}
