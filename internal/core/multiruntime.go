package core

import (
	"fmt"
	goruntime "runtime"
	"time"

	"anole/internal/device"
	"anole/internal/flight"
	"anole/internal/modelcache"
	"anole/internal/prefetch"
	"anole/internal/pressure"
	"anole/internal/slo"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/telemetry"
)

// MultiRuntimeConfig controls the multi-stream serving loop.
type MultiRuntimeConfig struct {
	// Streams is the number of independent frame streams (simulated
	// dash cams / UAVs) multiplexed over one shared model cache
	// (default 1).
	Streams int
	// CacheSlots is the shared cache capacity in compressed-model units
	// (default 5), split across CacheShards shards.
	CacheSlots int
	// Policy is the eviction policy (default LFU).
	Policy modelcache.Policy
	// CacheShards is the shard count of the shared cache (≤0 selects
	// min(Streams, CacheSlots), so a single stream gets a single shard
	// and reproduces Runtime's cache behavior exactly).
	CacheShards int
	// SwitchHysteresis is applied per stream (see
	// RuntimeConfig.SwitchHysteresis).
	SwitchHysteresis int
	// Workers bounds the goroutines driving streams (≤0 selects
	// GOMAXPROCS; always capped at Streams). Each in-flight stream is
	// owned by exactly one worker, so per-stream state needs no locks —
	// only the shared cache is contended.
	Workers int
	// Fleet assigns each stream its own device profile and power mode:
	// Fleet[i] is stream i's device, so a mixed fleet (Jetsons, laptops,
	// phone-class CPUs) runs under one event loop with per-stream
	// latency, energy, memory and thermal accounting. Its length must
	// equal Streams. Empty means no device simulation unless the
	// deprecated Device field is set.
	Fleet device.Fleet
	// Device is the deprecated single-profile form of Fleet: a non-nil
	// profile behaves exactly like device.UniformFleet(*Device, Streams).
	// Ignored when Fleet is non-empty.
	//
	// Deprecated: use Fleet.
	Device *device.Profile
	// Plan, when non-nil, enables OODIn-style per-device planning
	// (requires a fleet): the runtime builds quantized variants of the
	// bundle and solves, per stream, for the variant whose size fits the
	// device's cache byte capacity and whose estimated latency meets the
	// budget, re-planning when the pressure monitor changes level (a
	// throttled device may no longer sustain full precision). Mutually
	// exclusive with external bundle swaps (SwapStreamBundle /
	// SwapAllBundles return an error while planning owns the fleet).
	Plan *PlanConfig
	// Prefetch, when non-nil, builds ONE shared prefetch.Scheduler over
	// the shared cache (the Fetcher field must be set) and attaches it
	// to every stream: model bytes travel the device↔cloud link, absent
	// desired models stall their frame on an on-demand fetch, and
	// predicted switch targets are prefetched in the background. Every
	// processed frame — across all streams — advances the shared link
	// clock one tick, so the link services one frame-time of transfer
	// per frame of aggregate work. Call Close to drain the scheduler.
	Prefetch *prefetch.Config
	// Metrics, when non-nil, is the shared telemetry registry: the
	// sharded cache registers its anole_modelcache_* counters on it, the
	// prefetch scheduler its anole_prefetch_* counters (unless the
	// Prefetch config names its own registry), and every stream binds
	// the same anole_core_* handles, so the registry's values aggregate
	// across streams.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, is shared by every stream: each frame's
	// pipeline-stage spans land in the same bounded ring, tagged with
	// the stream index.
	Tracer *telemetry.Tracer
	// DegradedRetryFrames and DegradedRetryCap are applied per stream
	// (see the RuntimeConfig fields of the same names).
	DegradedRetryFrames int
	DegradedRetryCap    int
	// Batch enables batched execution: each tick's ready frames run
	// through the scene encoder and decision head as one matrix batch,
	// and frames resolved to the same detector are detected together as
	// one grouped batch. Cache resolution, device accounting, prefetch
	// ticks and bookkeeping are unchanged and run sequentially in
	// ascending stream order, so a batched run is deterministic for a
	// fixed input and its per-frame results are bit-identical to the
	// unbatched path (absent cross-stream cache interference, which
	// batching serializes rather than races).
	Batch bool
	// MaxBatch caps how many streams one batched dispatch stages
	// (default 256); larger ready sets are processed in consecutive
	// chunks, bounding the batch working set however many streams are
	// configured.
	MaxBatch int
	// Deadline, when positive, is the per-frame latency target driving
	// the shed ladder: the deadline controller watches each tick's
	// worst served-frame latency against it and escalates/relaxes the
	// ladder CoDel-style. Setting it enables the pressure machinery.
	Deadline time.Duration
	// Thermal, when non-nil, attaches this thermal model to every
	// stream's device simulator (requires Device), so sustained load
	// derates per-frame compute through device.ThrottleFactor and heat
	// feeds the pressure monitor.
	Thermal *device.ThermalModel
	// Pressure tunes the overload machinery (monitor thresholds,
	// controller persistence, watchdog, critical watermark). A non-nil
	// value enables it even without a Deadline — the monitor and
	// watchdog run, the shed ladder stays at ShedNone.
	Pressure *PressureConfig
	// Flight, when non-nil, receives the fleet's anomaly-relevant
	// events: non-served terminal frame verdicts, pressure-level
	// transitions, quarantines and bundle swaps. Anomalies freeze the
	// recorder and capture a diagnostic dump (see internal/flight).
	Flight *flight.Recorder
	// SLO, when non-nil, is fed every offered frame's terminal outcome
	// (latency, served, degraded) so the engine can compute windowed
	// objectives and burn rates (see internal/slo).
	SLO *slo.Engine
}

// MultiRuntime serves N independent frame streams over one shared
// thread-safe model cache. Every stream's Runtime runs against the SAME
// bundle: the models inside it are frozen nn.Weights programs with no
// execution state, so N streams hold exactly one resident copy of the
// encoder, decision head and all detectors regardless of N. Each stream
// keeps private hysteresis/decision state and working buffers; the
// cache — the resident-model budget of the shared accelerator — is the
// only structure streams contend on. Construct with NewMultiRuntime,
// drive with ProcessStreams.
type MultiRuntime struct {
	bundle  *Bundle
	cache   *modelcache.Sharded
	streams []*Runtime
	devs    []*device.Simulator
	workers int
	// pf is the shared prefetch scheduler (nil without Prefetch); the
	// MultiRuntime owns it and Close drains it.
	pf *prefetch.Scheduler
	// batch/maxBatch and the reusable working set drive the batched
	// event loop (see batchloop.go); bstate is nil when batching is off.
	batch    bool
	maxBatch int
	bstate   *batchState
	bmet     batchMetrics
	// fleet is the per-stream device assignment (empty without device
	// simulation); plan is the per-device variant selector state (nil
	// unless PlanConfig enabled it — see plan.go).
	fleet device.Fleet
	plan  *planState
	// press is the overload-survival machinery (nil unless a Deadline
	// or PressureConfig enabled it — see pressure.go).
	press *pressureState
	// flt and slo are the observability attachments (both optional,
	// both nil-safe): the flight recorder sees anomaly-relevant events,
	// the SLO engine sees every terminal frame outcome.
	flt *flight.Recorder
	slo *slo.Engine
}

// NewMultiRuntime validates the bundle once, builds the shared sharded
// cache, and prepares one runtime per stream, all sharing the bundle.
func NewMultiRuntime(b *Bundle, cfg MultiRuntimeConfig) (*MultiRuntime, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.CacheSlots <= 0 {
		cfg.CacheSlots = 5
	}
	if cfg.Policy == 0 {
		cfg.Policy = modelcache.LFU
	}
	shards := cfg.CacheShards
	if shards <= 0 {
		shards = cfg.Streams
		if shards > cfg.CacheSlots {
			shards = cfg.CacheSlots
		}
	}
	cache, err := modelcache.NewShardedMetrics(cfg.CacheSlots, cfg.Policy, shards, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > cfg.Streams {
		workers = cfg.Streams
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 256
	}
	// Resolve the per-stream device fleet: the deprecated single-profile
	// Device field is a uniform fleet of itself.
	fleet := cfg.Fleet
	if len(fleet) == 0 && cfg.Device != nil {
		fleet = device.UniformFleet(*cfg.Device, cfg.Streams)
	}
	if len(fleet) > 0 {
		if len(fleet) != cfg.Streams {
			return nil, fmt.Errorf("core: fleet has %d assignments for %d streams", len(fleet), cfg.Streams)
		}
		if err := fleet.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Plan != nil && len(fleet) == 0 {
		return nil, fmt.Errorf("core: per-device planning needs a device fleet (set Fleet or Device)")
	}
	m := &MultiRuntime{
		bundle:   b,
		cache:    cache,
		streams:  make([]*Runtime, cfg.Streams),
		devs:     make([]*device.Simulator, cfg.Streams),
		workers:  workers,
		batch:    cfg.Batch,
		maxBatch: maxBatch,
		bmet:     newBatchMetrics(cfg.Metrics),
		fleet:    fleet,
		flt:      cfg.Flight,
		slo:      cfg.SLO,
	}
	if cfg.Batch {
		m.bstate = newBatchState(workers)
	}
	// One byte-size registry covers the fleet bundle and every planner
	// variant, so streams on different variants share correct byte
	// accounting in the shared cache.
	sizer := newSizerRegistry()
	sizer.add(b)
	pfModels := PrefetchModels(b)
	if cfg.Plan != nil {
		ps, err := newPlanState(b, cfg.Plan, cfg.Streams, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		m.plan = ps
		for _, v := range ps.variants[1:] {
			sizer.add(v.bundle)
			pfModels = append(pfModels, PrefetchModels(v.bundle)...)
		}
	}
	if cfg.Prefetch != nil {
		pcfg := *cfg.Prefetch
		if pcfg.Metrics == nil {
			pcfg.Metrics = cfg.Metrics
		}
		sched, err := prefetch.NewScheduler(pcfg, cache, pfModels)
		if err != nil {
			return nil, err
		}
		m.pf = sched
	}
	if len(fleet) > 0 {
		// Satellite memory budget: GPU memory bounds the cache in bytes,
		// not just slots. The sizer measures serialized model bytes while
		// the device charges paper-scale bytes (WeightBytes × BytesScale),
		// so the budget converts real GPU bytes back down to sizer units.
		// The shared cache is sized to the roomiest device; tighter
		// per-device ceilings are enforced by the planner, which never
		// assigns a stream a variant exceeding its own device's capacity.
		if byteCap := int64(fleet.MaxGPUMemoryMB() * float64(1<<20) / device.BytesScale); byteCap > 0 {
			cache.SetByteCapacity(byteCap)
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("anole_core_streams", "configured frame streams").Set(float64(cfg.Streams))
		cfg.Metrics.Gauge("anole_core_workers", "goroutines driving streams").Set(float64(workers))
	}
	for i := range m.streams {
		var dev *device.Simulator
		if len(fleet) > 0 {
			var err error
			dev, err = device.NewSimulatorAtMode(fleet[i].Profile, fleet[i].Mode)
			if err != nil {
				return nil, fmt.Errorf("core: stream %d: %w", i, err)
			}
			if cfg.Thermal != nil {
				dev.EnableThermal(cfg.Thermal)
			}
		}
		rt, err := NewRuntime(b, RuntimeConfig{
			Store:               cache,
			Device:              dev,
			SwitchHysteresis:    cfg.SwitchHysteresis,
			Prefetcher:          m.pf,
			Metrics:             cfg.Metrics,
			Tracer:              cfg.Tracer,
			StreamID:            i,
			sizer:               sizer,
			DegradedRetryFrames: cfg.DegradedRetryFrames,
			DegradedRetryCap:    cfg.DegradedRetryCap,
		})
		if err != nil {
			return nil, fmt.Errorf("core: stream %d: %w", i, err)
		}
		m.streams[i] = rt
		m.devs[i] = dev
		if m.slo != nil && len(fleet) > 0 {
			m.slo.SetStreamClass(int32(i), fleet[i].Class)
		}
	}
	m.press = newPressureState(cfg.Streams, cfg.Deadline, cfg.Pressure, cfg.Metrics, m.pressureReact(cfg.Pressure.criticalWatermark()))
	if m.press != nil {
		m.press.latScale = fleetLatencyScales(fleet)
	}
	if m.plan != nil {
		if err := m.applyInitialPlan(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// pressureReact builds the monitor subscriber that turns level changes
// into fleet reactions: Elevated pauses background prefetch plans (the
// link and cache budget go to demand traffic), Critical tightens the
// cache's byte watermark and sweeps unpinned entries down to it.
// Dropping back below each threshold undoes the reaction.
func (m *MultiRuntime) pressureReact(watermark float64) func(pressure.Level) {
	return func(lv pressure.Level) {
		m.flt.Record(flight.Event{
			Stream: flight.GlobalStream,
			Kind:   flight.KindPressure,
			Detail: lv.String(),
			Value:  float64(lv),
		})
		if m.pf != nil {
			m.pf.SetPaused(lv >= pressure.Elevated)
		}
		if lv >= pressure.Critical {
			m.cache.SetWatermark(watermark)
			evicted := m.cache.SweepToWatermark()
			m.press.mon.NoteSweep(len(evicted))
		} else {
			m.cache.SetWatermark(1)
		}
		// A level transition means the thermal/residency picture changed:
		// re-run per-device planning so throttled devices can step down
		// to a cheaper variant (and recovered ones step back up).
		m.replanStreams()
	}
}

// NumStreams returns the configured stream count.
func (m *MultiRuntime) NumStreams() int { return len(m.streams) }

// Workers returns the worker-pool size ProcessStreams will use.
func (m *MultiRuntime) Workers() int { return m.workers }

// Bundle returns the shared, read-only bundle every stream runs on.
func (m *MultiRuntime) Bundle() *Bundle { return m.bundle }

// StreamBundle returns the bundle stream i runs on — always the same
// pointer Bundle returns, exposed so tests can pin the single-resident-
// copy invariant.
func (m *MultiRuntime) StreamBundle(i int) *Bundle { return m.streams[i].Bundle() }

// Cache returns the shared sharded model cache.
func (m *MultiRuntime) Cache() *modelcache.Sharded { return m.cache }

// SwapStreamBundle deploys b on stream i only — the canary step of a
// rollout. Mixed-bundle fleets stay on the batched path: the batcher
// groups each tick's frames by the bundle they run, so a canary batches
// within its own group. Call only between ProcessStreams calls. Not
// available while per-device planning owns the fleet's bundles.
func (m *MultiRuntime) SwapStreamBundle(i int, b *Bundle) error {
	if m.plan != nil {
		return fmt.Errorf("core: bundle swaps are not available with per-device planning enabled")
	}
	if i < 0 || i >= len(m.streams) {
		return fmt.Errorf("core: swap on stream %d of %d", i, len(m.streams))
	}
	if err := m.streams[i].SwapBundle(b); err != nil {
		return err
	}
	m.flt.Record(flight.Event{Stream: i, Kind: flight.KindSwap, Detail: "canary"})
	return nil
}

// SwapAllBundles deploys b on every stream and adopts it as the shared
// fleet bundle — the promote (or rollback) step of a rollout. Call only
// between ProcessStreams calls. Not available while per-device planning
// owns the fleet's bundles.
func (m *MultiRuntime) SwapAllBundles(b *Bundle) error {
	if m.plan != nil {
		return fmt.Errorf("core: bundle swaps are not available with per-device planning enabled")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	for i, rt := range m.streams {
		if err := rt.SwapBundle(b); err != nil {
			return fmt.Errorf("core: stream %d: %w", i, err)
		}
	}
	if m.bstate != nil {
		// Retired bundles' batch scratches are pruned lazily by the next
		// tick; releasing here keeps promotion prompt.
		m.bstate.releaseAll()
	}
	m.bundle = b
	m.flt.Record(flight.Event{Stream: flight.GlobalStream, Kind: flight.KindSwap, Detail: "fleet"})
	return nil
}

// PurgeStaleModels evicts every cached model that no live bundle
// references and returns how many were removed — the old-generation
// cleanup run after a promotion (never during a canary, when two
// generations legitimately coexist). "Live" covers the fleet bundle,
// every stream's current bundle, and — under per-device planning — every
// variant a replan could still select. Pinned or mid-prefetch entries
// are removed like any other: nothing live references them.
func (m *MultiRuntime) PurgeStaleModels() int {
	keep := make(map[string]bool, m.bundle.NumModels())
	for _, d := range m.bundle.Detectors {
		keep[d.Name] = true
	}
	for _, rt := range m.streams {
		for _, d := range rt.Bundle().Detectors {
			keep[d.Name] = true
		}
	}
	if m.plan != nil {
		for _, v := range m.plan.variants {
			for _, d := range v.bundle.Detectors {
				keep[d.Name] = true
			}
		}
	}
	purged := 0
	for _, key := range m.cache.Keys() {
		if !keep[key] && m.cache.Remove(key) {
			purged++
		}
	}
	return purged
}

// Prefetcher returns the shared prefetch scheduler (nil when
// prefetching is disabled).
func (m *MultiRuntime) Prefetcher() *prefetch.Scheduler { return m.pf }

// Close drains the shared prefetch scheduler and detaches it from every
// stream, and returns the batch working set's scratches to their pools.
// Safe without prefetching; call after the last ProcessStreams.
func (m *MultiRuntime) Close() {
	for _, rt := range m.streams {
		rt.Close()
	}
	if m.pf != nil {
		m.pf.Close()
		m.pf = nil
	}
	if m.bstate != nil {
		m.bstate.releaseAll()
		m.bstate = nil
	}
}

// StreamDevice returns stream i's device simulator (nil without a
// fleet). Read it only after ProcessStreams returns.
func (m *MultiRuntime) StreamDevice(i int) *device.Simulator { return m.devs[i] }

// Fleet returns the per-stream device assignment (nil without device
// simulation). The returned slice is the runtime's own — do not mutate.
func (m *MultiRuntime) Fleet() device.Fleet { return m.fleet }

// StreamObserver is invoked after every processed frame. Calls for one
// stream are always sequential and frame-ordered. In the unbatched mode
// calls for different streams come from concurrent worker goroutines,
// so an observer writing shared state must synchronize — per-stream
// sinks (e.g. one trace.Writer per stream) need no locks. With batching
// enabled (MultiRuntimeConfig.Batch) every call is serialized on the
// event-loop goroutine in (tick, stream) order, so no synchronization
// is needed at all. Returning an error aborts the run.
type StreamObserver func(stream int, f *synth.Frame, res FrameResult) error

// ProcessStreams drives streams[i] through stream i's runtime as an
// event loop over frame ticks: at tick t every stream with a t-th frame
// is ready, and the loop dispatches exactly one frame per ready stream
// before advancing — streams stay within one frame of each other
// (tick-fair), however unequal their lengths. Per frame the pipeline is
// decision (MSS on the shared frozen encoder/head) → cache admission
// (CMD against the shared sharded cache) → inference (MI on the shared
// detector).
//
// Unbatched, a tick's ready frames are spread across the worker pool
// and each worker runs the full per-frame pipeline. With batching
// enabled, the tick's frames run MSS as one matrix batch, resolve the
// cache sequentially in ascending stream order (deterministic), and are
// detected in per-model groups — one batched detector pass per distinct
// serving model, groups in parallel up to the worker budget.
//
// len(streams) must equal NumStreams. It returns the per-stream frame
// results; on error the first failure is returned and the results are
// discarded. ProcessStreams must not be called concurrently with itself
// or with Stats.
func (m *MultiRuntime) ProcessStreams(streams [][]*synth.Frame, obs StreamObserver) ([][]FrameResult, error) {
	if len(streams) != len(m.streams) {
		return nil, fmt.Errorf("core: %d frame streams for %d runtime streams", len(streams), len(m.streams))
	}
	results := make([][]FrameResult, len(streams))
	maxLen := 0
	for i := range streams {
		results[i] = make([]FrameResult, len(streams[i]))
		if len(streams[i]) > maxLen {
			maxLen = len(streams[i])
		}
	}

	var loop *tickLoop
	if !m.batch && m.workers > 1 && m.press == nil {
		// With the pressure machinery on, unbatched ticks run serially
		// on the event-loop goroutine: the shed ladder, watchdog and
		// error-to-quarantine conversion need deterministic per-tick
		// ordering, which the worker pool does not guarantee.
		loop = startTickLoop(m, streams, results, obs)
		defer loop.stop()
	}

	ready := make([]int, 0, len(streams))
	for tick := 0; tick < maxLen; tick++ {
		ready = ready[:0]
		for i := range streams {
			if tick < len(streams[i]) {
				ready = append(ready, i)
			}
		}
		m.bmet.occupancy.Set(float64(len(ready)) / float64(len(streams)))
		var err error
		switch {
		case m.press != nil:
			err = m.processTickPressure(tick, ready, streams, results, obs)
		case m.batch:
			err = m.processTickBatched(tick, ready, streams, results, obs)
		case loop != nil:
			err = loop.runTick(tick, ready)
		default:
			err = m.processTickSerial(tick, ready, streams, results, obs)
		}
		if err != nil {
			return nil, err
		}
		if m.press != nil {
			m.observePressureTick(tick, ready, results)
		}
		if m.slo != nil || m.flt != nil {
			m.observeTickOutcomes(tick, ready, results)
		}
	}
	return results, nil
}

// observeTickOutcomes feeds one completed tick's terminal frame
// outcomes to the SLO engine and flight recorder. Served and
// downgraded frames count as served for the availability objective;
// every non-served verdict lands in the flight ring (downgraded frames
// carry their frame trace — shed and quarantined frames never entered
// the pipeline, so they have none).
func (m *MultiRuntime) observeTickOutcomes(tick int, ready []int, results [][]FrameResult) {
	for _, i := range ready {
		res := results[i][tick]
		served := res.Verdict == VerdictServed || res.Verdict == VerdictDowngraded
		m.slo.ObserveFrame(i, res.Latency, served, res.Degraded || res.Verdict == VerdictDowngraded)
		if m.flt != nil && res.Verdict != VerdictServed {
			var trace string
			if res.Verdict == VerdictDowngraded {
				trace = m.streams[i].frameTrace
			}
			m.flt.Record(flight.Event{
				Stream: i,
				Kind:   flight.KindVerdict,
				Detail: res.Verdict.String(),
				Trace:  trace,
			})
		}
	}
}

// processTickSerial runs one tick's ready frames inline in ascending
// stream order — the single-worker form of the event loop.
func (m *MultiRuntime) processTickSerial(tick int, ready []int, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) error {
	for _, i := range ready {
		f := streams[i][tick]
		res, err := m.streams[i].ProcessFrame(f)
		if err != nil {
			return fmt.Errorf("core: stream %d: %w", i, err)
		}
		if obs != nil {
			if err := obs(i, f, res); err != nil {
				return fmt.Errorf("core: stream %d observer: %w", i, err)
			}
		}
		results[i][tick] = res
	}
	return nil
}

// StreamStats returns stream i's RunStats. Its Cache and MissRate
// fields reflect the shared cache (all streams), while the frame,
// switch, detection and latency fields are the stream's own.
func (m *MultiRuntime) StreamStats(i int) RunStats { return m.streams[i].Stats() }

// Stats merges every stream's RunStats into the aggregate view: frame,
// switch, per-model and detection counters are summed (detection P/R/F1
// recomputed from the summed counts), scene durations concatenated in
// stream order, and the cache counters taken once from the shared
// sharded cache.
func (m *MultiRuntime) Stats() RunStats {
	// During a canary (and after a rollback) streams can disagree on
	// repertoire size; per-model slices are sized to the largest any
	// stream has ever seen.
	n := m.bundle.NumModels()
	for _, rt := range m.streams {
		if k := len(rt.stats.DesiredCounts); k > n {
			n = k
		}
	}
	agg := RunStats{
		DesiredCounts: make([]int, n),
		UsedCounts:    make([]int, n),
	}
	for _, rt := range m.streams {
		s := rt.Stats()
		agg.Frames += s.Frames
		agg.Switches += s.Switches
		agg.SceneDurations = append(agg.SceneDurations, s.SceneDurations...)
		for j := range s.DesiredCounts {
			agg.DesiredCounts[j] += s.DesiredCounts[j]
			agg.UsedCounts[j] += s.UsedCounts[j]
		}
		agg.Detection.TP += s.Detection.TP
		agg.Detection.FP += s.Detection.FP
		agg.Detection.FN += s.Detection.FN
		agg.TotalLatency += s.TotalLatency
		agg.ColdMisses += s.ColdMisses
		agg.FetchStall += s.FetchStall
		agg.DegradedFrames += s.DegradedFrames
		agg.FallbackServed += s.FallbackServed
		agg.ShedFrames += s.ShedFrames
		agg.DowngradedServed += s.DowngradedServed
		agg.QuarantinedFrames += s.QuarantinedFrames
	}
	agg.Detection = stats.ComputePRF1(agg.Detection.TP, agg.Detection.FP, agg.Detection.FN)
	agg.Cache = m.cache.Stats()
	agg.MissRate = m.cache.MissRate()
	return agg
}

// SimulatedMakespan returns the largest per-stream simulated latency:
// streams progress concurrently on their own devices, so this — not the
// sum — is the simulated wall-clock to drain all streams. Aggregate
// simulated throughput is Stats().Frames divided by this duration.
func (m *MultiRuntime) SimulatedMakespan() time.Duration {
	var max time.Duration
	for _, rt := range m.streams {
		if s := rt.Stats(); s.TotalLatency > max {
			max = s.TotalLatency
		}
	}
	return max
}
