package core_test

import (
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// linkPrefetchConfig builds a prefetch.Config over a fresh simulated
// link with the given netsim config, sized for the fixture bundle.
func linkPrefetchConfig(t *testing.T, b *core.Bundle, net netsim.Config, topK int) *prefetch.Config {
	t.Helper()
	link, err := netsim.NewLink(net, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	lf, err := prefetch.NewLinkFetcher(link, core.PrefetchModels(b), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &prefetch.Config{Fetcher: lf, TopK: topK}
}

func TestRuntimePrefetchServesDesiredAfterDemandFetch(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots: 3,
		Prefetch:   linkPrefetchConfig(t, fx.Bundle, netsim.DefaultConfig(1), 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Prefetcher() == nil {
		t.Fatal("no scheduler attached")
	}
	frames := fx.Corpus.Frames(synth.Test)
	for _, f := range frames[:80] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		// On an always-Good link every demand fetch succeeds, so the
		// desired model serves every frame — cold misses stall instead
		// of degrading to a fallback model.
		if res.Used != res.Desired {
			t.Fatalf("used %d, desired %d", res.Used, res.Desired)
		}
		if res.FetchStall > 0 && res.Latency < res.FetchStall {
			t.Fatalf("latency %v below fetch stall %v", res.Latency, res.FetchStall)
		}
	}
	st := rt.Stats()
	if st.ColdMisses == 0 {
		t.Fatal("no cold misses recorded (cache starts empty)")
	}
	if st.FetchStall <= 0 {
		t.Fatal("cold misses recorded but no fetch stall")
	}
	ps := rt.Prefetcher().Stats()
	if ps.DemandFetches != int64(st.ColdMisses) {
		t.Fatalf("demand fetches %d, cold misses %d", ps.DemandFetches, st.ColdMisses)
	}
	if ps.Observations != int64(st.Switches) {
		t.Fatalf("observations %d, switches %d", ps.Observations, st.Switches)
	}
}

func TestRuntimeWithoutPrefetchUnchanged(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close() // must be a no-op
	if rt.Prefetcher() != nil {
		t.Fatal("scheduler attached without config")
	}
	frames := fx.Corpus.Frames(synth.Test)
	for _, f := range frames[:40] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.FetchStall != 0 {
			t.Fatalf("fetch stall %v without a link", res.FetchStall)
		}
	}
	st := rt.Stats()
	if st.ColdMisses != 0 || st.FetchStall != 0 {
		t.Fatalf("link counters moved without a link: %+v", st)
	}
}

func TestRuntimePrefetchValidation(t *testing.T) {
	fx := testutil.Shared(t)
	// A Prefetch config without a fetcher must be rejected.
	if _, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		Prefetch: &prefetch.Config{},
	}); err == nil {
		t.Fatal("prefetch config without fetcher accepted")
	}
}

func TestRuntimeCloseDetachesScheduler(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots: 3,
		Prefetch:   linkPrefetchConfig(t, fx.Bundle, netsim.DefaultConfig(1), 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := fx.Corpus.Frames(synth.Test)
	if _, err := rt.ProcessFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if rt.Prefetcher() != nil {
		t.Fatal("scheduler still attached after Close")
	}
	// The runtime keeps serving frames, link-free.
	res, err := rt.ProcessFrame(frames[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchStall != 0 {
		t.Fatalf("fetch stall %v after Close", res.FetchStall)
	}
}

// TestMultiRuntimePrefetchShared drives several streams over one shared
// scheduler and link; run with -race.
func TestMultiRuntimePrefetchShared(t *testing.T) {
	fx := testutil.Shared(t)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    4,
		CacheSlots: 4,
		Prefetch:   linkPrefetchConfig(t, fx.Bundle, netsim.DefaultConfig(0.9), 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Prefetcher() == nil {
		t.Fatal("no shared scheduler")
	}
	streams := streamFrames(t, 4, 60)
	if _, err := m.ProcessStreams(streams, nil); err != nil {
		t.Fatal(err)
	}
	agg := m.Stats()
	if agg.ColdMisses == 0 {
		t.Fatal("no cold misses across streams")
	}
	sched := m.Prefetcher()
	ps := sched.Stats()
	if ps.DemandFetches+ps.DemandFailures != int64(agg.ColdMisses) {
		t.Fatalf("demand fetches %d (+%d failed), cold misses %d",
			ps.DemandFetches, ps.DemandFailures, agg.ColdMisses)
	}
	m.Close()
	// After Close every background flight has drained, so the counters
	// must balance.
	ps = sched.Stats()
	if ps.Completed+ps.Cancelled+ps.Failed != ps.Issued {
		t.Fatalf("unsettled flights after Close: %+v", ps)
	}
}
