// Package core is the public face of the Anole reproduction: the offline
// Profiler (the paper's Offline Scene Profiling pipeline: TCM → ASS →
// TDM, Fig. 2 left) producing a deployable Bundle, and the online Runtime
// (Model Selection Strategy + Cache-based Model Deployment + Model
// Inference, Fig. 2 right) executing it frame by frame on a simulated
// mobile device.
package core

import (
	"fmt"
	"math"

	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/device"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/tensor"
)

// ModelInfo is the provenance of one repertoire model, preserved through
// bundle serialization.
type ModelInfo struct {
	Name        string
	Level       int
	Cluster     int
	TrainScenes []int
	ValF1       float64
}

// Bundle is everything a device downloads before going online: the scene
// encoder, the decision model head, the compressed model repertoire, and
// the novelty calibration used to flag out-of-distribution scenes.
type Bundle struct {
	Encoder   *scene.Encoder
	Decision  *decision.Model
	Detectors []*detect.Detector
	Infos     []ModelInfo
	// FeatDim is the per-cell feature dimension the detectors expect.
	FeatDim int

	// Centroids holds the mean scene embedding of each encoder class
	// (training-time scenes); NoveltyScale is the 95th percentile of
	// training frames' distances to their own centroid. Together they
	// calibrate Novelty: distances beyond the scale mark frames outside
	// every known scene (the paper's case 3). Optional: a bundle
	// without centroids reports novelty 0.
	Centroids    []tensor.Vector
	NoveltyScale float64
}

// A Bundle is immutable once built: every model inside it is a frozen
// nn.Weights program, so a single Bundle serves any number of goroutines
// concurrently — streams share one resident copy of all detectors rather
// than cloning per goroutine.

// Novelty scores how far a frame sits from every known scene: the
// embedding's distance to the nearest scene centroid divided by the
// calibrated in-scene 95th-percentile distance. Values ≤ 1 are ordinary;
// values well above 1 indicate a scene no repertoire model was trained
// for. Returns 0 when the bundle carries no calibration.
func (b *Bundle) Novelty(f *synth.Frame) float64 {
	if len(b.Centroids) == 0 || b.NoveltyScale <= 0 {
		return 0
	}
	emb := b.Encoder.Embed(f)
	return b.NoveltyOfEmbedding(emb)
}

// CalibrateNovelty computes the scene centroids and the in-scene
// 95th-percentile distance from the training frames, enabling Novelty.
// Frames whose scene is unknown to the encoder are skipped.
func (b *Bundle) CalibrateNovelty(train []*synth.Frame) {
	k := b.Encoder.NumClasses()
	if k == 0 || len(train) == 0 {
		return
	}
	centroids := make([]tensor.Vector, k)
	counts := make([]int, k)
	embeddings := make([]tensor.Vector, 0, len(train))
	classes := make([]int, 0, len(train))
	for _, f := range train {
		cls := b.Encoder.ClassOf(f.Scene.Index())
		if cls < 0 {
			continue
		}
		emb := b.Encoder.Embed(f)
		if centroids[cls] == nil {
			centroids[cls] = tensor.NewVector(len(emb))
		}
		centroids[cls].AddScaled(1, emb)
		counts[cls]++
		embeddings = append(embeddings, emb)
		classes = append(classes, cls)
	}
	var kept []tensor.Vector
	remap := make([]int, k)
	for cls := range centroids {
		remap[cls] = -1
		if counts[cls] == 0 {
			continue
		}
		centroids[cls].Scale(1 / float64(counts[cls]))
		remap[cls] = len(kept)
		kept = append(kept, centroids[cls])
	}
	if len(kept) == 0 {
		return
	}
	dists := make([]float64, 0, len(embeddings))
	for i, emb := range embeddings {
		ci := remap[classes[i]]
		if ci < 0 {
			continue
		}
		dists = append(dists, math.Sqrt(emb.SquaredDistance(kept[ci])))
	}
	scale := stats.Quantile(dists, 0.95)
	if scale <= 0 {
		scale = 1e-9
	}
	b.Centroids = kept
	b.NoveltyScale = scale
}

// NoveltyOfEmbedding scores a precomputed scene embedding (see Novelty).
func (b *Bundle) NoveltyOfEmbedding(emb tensor.Vector) float64 {
	if len(b.Centroids) == 0 || b.NoveltyScale <= 0 {
		return 0
	}
	min := math.Inf(1)
	for _, c := range b.Centroids {
		if d := emb.SquaredDistance(c); d < min {
			min = d
		}
	}
	return math.Sqrt(min) / b.NoveltyScale
}

// Validate checks the bundle's internal consistency.
func (b *Bundle) Validate() error {
	switch {
	case b == nil:
		return fmt.Errorf("core: nil bundle")
	case b.Encoder == nil:
		return fmt.Errorf("core: bundle missing encoder")
	case b.Decision == nil:
		return fmt.Errorf("core: bundle missing decision model")
	case len(b.Detectors) == 0:
		return fmt.Errorf("core: bundle has no compressed models")
	case b.Decision.N != len(b.Detectors):
		return fmt.Errorf("core: decision head ranks %d models, bundle has %d", b.Decision.N, len(b.Detectors))
	case len(b.Infos) != len(b.Detectors):
		return fmt.Errorf("core: %d infos for %d models", len(b.Infos), len(b.Detectors))
	}
	for i, d := range b.Detectors {
		if d == nil {
			return fmt.Errorf("core: nil detector %d", i)
		}
		if d.FeatDim() != b.FeatDim {
			return fmt.Errorf("core: detector %d feat dim %d, bundle %d", i, d.FeatDim(), b.FeatDim)
		}
	}
	return nil
}

// NumModels returns the repertoire size n.
func (b *Bundle) NumModels() int { return len(b.Detectors) }

// ModelCost returns the device-simulation cost of compressed model i for
// a frame with `cells` grid cells.
func (b *Bundle) ModelCost(i, cells int) device.ModelCost {
	d := b.Detectors[i]
	return device.ModelCost{
		Name:              d.Name,
		FLOPsPerInference: d.FrameFLOPs(cells),
		WeightBytes:       d.WeightBytes(),
		QuantBits:         d.Weights().QuantBits(),
	}
}

// DecisionCost returns the device-simulation cost of one decision-model
// evaluation (scene embedding + head, the Table IV "M_scene + M_decision"
// row).
func (b *Bundle) DecisionCost() device.ModelCost {
	return device.ModelCost{
		Name:              "M_scene+M_decision",
		FLOPsPerInference: b.Decision.FLOPs(),
		WeightBytes:       b.Decision.WeightBytes(),
	}
}
