package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/tensor"
)

// batchMetrics are the batched-execution telemetry handles. All handles
// are nil-safe, so the zero value (no registry) costs one nil check per
// site.
type batchMetrics struct {
	// dispatches counts batched decide dispatches (one per chunk);
	// batchedFrames counts the frames those dispatches carried, so
	// batchedFrames/dispatches is the realized mean batch size.
	dispatches    *telemetry.Counter
	batchedFrames *telemetry.Counter
	// batchSize is the per-dispatch frame-count distribution.
	batchSize *telemetry.Histogram
	// occupancy is the fraction of configured streams ready in the most
	// recent tick — 1.0 while all streams still have frames, decaying as
	// shorter streams drain.
	occupancy *telemetry.Gauge
}

func newBatchMetrics(reg *telemetry.Registry) batchMetrics {
	if reg == nil {
		return batchMetrics{}
	}
	return batchMetrics{
		dispatches:    reg.Counter("anole_core_batch_dispatches_total", "batched decide dispatches"),
		batchedFrames: reg.Counter("anole_core_batched_frames_total", "frames processed through the batched path"),
		batchSize:     reg.Histogram("anole_core_batch_size_frames", "frames per batched dispatch", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		occupancy:     reg.Gauge("anole_core_tick_occupancy", "fraction of streams ready in the current tick"),
	}
}

// bundleBatch is the batched working set for one bundle: held
// encoder/head batch scratches, the chunk positions currently staged on
// it, and the per-model grouping for the detector pass. Streams on a
// heterogeneous fleet may run different planner variants, and each
// variant is its own Bundle — so batching groups by bundle, and a
// homogeneous fleet collapses to exactly one group (the original
// single-bundle fast path).
type bundleBatch struct {
	bundle *Bundle
	enc    *nn.BatchScratch // held from this bundle's encoder pool
	head   *nn.BatchScratch // held from this bundle's decision-head pool

	// posns lists the chunk positions staged on this bundle this tick;
	// embs/scores hold their batched MSS outputs row-aligned with posns.
	posns  []int
	embs   *tensor.Matrix
	scores *tensor.Matrix

	// Per model u: which chunk positions resolved to it this tick, and
	// the reusable frame/dst slices handed to DetectBatch.
	members [][]int
	gframes [][]*synth.Frame
	gdsts   [][][]detect.CellPred

	seen bool // staged frames this chunk; unseen groups are pruned
}

func newBundleBatch(b *Bundle) *bundleBatch {
	n := b.NumModels()
	return &bundleBatch{
		bundle:  b,
		enc:     b.Encoder.Weights.AcquireBatchScratch(),
		head:    b.Decision.Head.AcquireBatchScratch(),
		members: make([][]int, n),
		gframes: make([][]*synth.Frame, n),
		gdsts:   make([][][]detect.CellPred, n),
	}
}

// release returns the held scratches to their bundle's pools.
func (g *bundleBatch) release() {
	g.bundle.Encoder.Weights.ReleaseBatchScratch(g.enc)
	g.bundle.Decision.Head.ReleaseBatchScratch(g.head)
	g.enc, g.head = nil, nil
}

// batchState is the reusable working set of the batched event loop: one
// bundleBatch per distinct stream bundle (lazily created, pruned when a
// bundle falls out of use), and the per-chunk frame bookkeeping. It
// belongs to the ProcessStreams goroutine; the detector groups borrow
// disjoint slices of it.
type batchState struct {
	groups map[*Bundle]*bundleBatch
	order  []*bundleBatch // groups in first-staged order this chunk

	// Per chunk position j: the group and batch row the frame was staged
	// on, the tracer sequence, the simulated detect duration, and the
	// in-flight frame result.
	groupOf []*bundleBatch
	rowOf   []int
	seqs    []int64
	durs    []time.Duration
	res     []FrameResult

	// sem bounds concurrent detector groups at the worker budget.
	sem chan struct{}
}

func newBatchState(workers int) *batchState {
	return &batchState{
		groups: make(map[*Bundle]*bundleBatch),
		sem:    make(chan struct{}, workers),
	}
}

// ensure sizes the per-chunk bookkeeping for n frames.
func (bs *batchState) ensure(n int) {
	if cap(bs.res) < n {
		bs.res = make([]FrameResult, n)
		bs.seqs = make([]int64, n)
		bs.durs = make([]time.Duration, n)
		bs.groupOf = make([]*bundleBatch, n)
		bs.rowOf = make([]int, n)
	}
	bs.res = bs.res[:n]
	bs.seqs = bs.seqs[:n]
	bs.durs = bs.durs[:n]
	bs.groupOf = bs.groupOf[:n]
	bs.rowOf = bs.rowOf[:n]
}

// groupFor returns the bundleBatch for b, creating it on first use.
func (bs *batchState) groupFor(b *Bundle) *bundleBatch {
	g, ok := bs.groups[b]
	if !ok {
		g = newBundleBatch(b)
		bs.groups[b] = g
	}
	return g
}

// prune releases groups whose bundle staged no frame this chunk — a
// re-plan or bundle swap moved its streams elsewhere.
func (bs *batchState) prune() {
	for b, g := range bs.groups {
		if !g.seen {
			g.release()
			delete(bs.groups, b)
		}
	}
}

// releaseAll returns every group's scratches to their pools.
func (bs *batchState) releaseAll() {
	for b, g := range bs.groups {
		g.release()
		delete(bs.groups, b)
	}
	bs.order = bs.order[:0]
}

// processTickBatched runs one tick's ready streams through the batched
// pipeline, in consecutive chunks of at most maxBatch frames.
func (m *MultiRuntime) processTickBatched(tick int, ready []int, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) error {
	for off := 0; off < len(ready); off += m.maxBatch {
		end := min(off+m.maxBatch, len(ready))
		if err := m.processChunkBatched(tick, ready[off:end], streams, results, obs); err != nil {
			return err
		}
	}
	return nil
}

// processChunkBatched is one batched dispatch: the chunk's frames are
// partitioned by the bundle each stream currently runs (one partition on
// a homogeneous fleet; one per planner variant in use on a mixed fleet),
// each partition runs the scene encoder and decision head as single
// matrix batches, then each frame's cache resolution and device
// accounting runs sequentially in GLOBAL ascending stream order (the
// shared cache and link see the same deterministic order every run),
// then frames are detected in per-(bundle, model) groups, and finally
// scoring, bookkeeping and the observer run sequentially in stream order
// again. Per frame the arithmetic is bit-identical to
// Runtime.ProcessFrame: the batched kernels preserve each dot product's
// summation order and the stage methods are shared.
func (m *MultiRuntime) processChunkBatched(tick int, chunk []int, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) error {
	bs := m.bstate
	n := len(chunk)
	bs.ensure(n)

	// Vet the whole chunk before touching any shared clock: a bad frame
	// must not leave half a tick processed.
	for _, i := range chunk {
		if err := m.streams[i].validateFrame(streams[i][tick]); err != nil {
			return fmt.Errorf("core: stream %d: %w", i, err)
		}
	}

	// Partition the chunk by each stream's current bundle. Re-plans swap
	// bundles between ticks, never inside one, so the partition is stable
	// for the whole chunk.
	bs.order = bs.order[:0]
	for _, g := range bs.groups {
		g.seen = false
		g.posns = g.posns[:0]
	}
	for j, i := range chunk {
		g := bs.groupFor(m.streams[i].Bundle())
		if !g.seen {
			g.seen = true
			bs.order = append(bs.order, g)
		}
		bs.groupOf[j] = g
		bs.rowOf[j] = len(g.posns)
		g.posns = append(g.posns, j)
	}

	// MSS per partition: stage every frame's feature vector as a row,
	// then one encoder pass and one head pass per bundle.
	for _, g := range bs.order {
		rows := len(g.posns)
		feats := g.enc.In(rows, synth.FrameFeatureDim(g.bundle.FeatDim))
		for r, j := range g.posns {
			synth.FrameFeatureInto(feats.Row(r), streams[chunk[j]][tick])
		}
		g.embs = g.bundle.Encoder.EmbedBatchInto(g.enc.Out(rows, g.bundle.Encoder.EmbedDim()), feats, g.enc)
		g.scores = g.bundle.Decision.ScoresBatchInto(g.head.Out(rows, g.bundle.NumModels()), g.embs, g.head)
		m.bmet.dispatches.Inc()
		m.bmet.batchSize.Observe(float64(rows))
	}

	// Sequential backbone: clocks, hysteresis, cache and link in global
	// ascending stream order — interleaving the partitions here keeps
	// shared-state ordering identical to the unbatched loop.
	for j, i := range chunk {
		rt := m.streams[i]
		f := streams[i][tick]
		g, r := bs.groupOf[j], bs.rowOf[j]
		bs.res[j] = FrameResult{}
		seq := rt.beginFrame()
		rt.adoptDecision(g.embs.Row(r), g.scores.Row(r))
		rank := rt.stageDecide(seq, &bs.res[j])
		if err := rt.stageResolve(f, seq, rank, &bs.res[j]); err != nil {
			return fmt.Errorf("core: stream %d: %w", i, err)
		}
		bs.durs[j] = rt.detectAccount(f, &bs.res[j])
		bs.seqs[j] = seq
	}

	// Group frames by (bundle, serving model) and run one batched
	// detector pass per group — groups in parallel up to the worker
	// budget. Each stream belongs to exactly one group, so the groups
	// touch disjoint predsBuf sets.
	groups := 0
	for _, g := range bs.order {
		for u := range g.members {
			g.members[u] = g.members[u][:0]
		}
		for _, j := range g.posns {
			u := bs.res[j].Used
			if len(g.members[u]) == 0 {
				groups++
			}
			g.members[u] = append(g.members[u], j)
		}
	}
	if groups <= 1 || m.workers <= 1 {
		for _, g := range bs.order {
			for u := range g.members {
				if len(g.members[u]) > 0 {
					m.detectGroup(g, tick, u, chunk, streams)
				}
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, g := range bs.order {
			for u := range g.members {
				if len(g.members[u]) == 0 {
					continue
				}
				wg.Add(1)
				bs.sem <- struct{}{}
				go func(g *bundleBatch, u int) {
					defer wg.Done()
					m.detectGroup(g, tick, u, chunk, streams)
					<-bs.sem
				}(g, u)
			}
		}
		wg.Wait()
	}

	// Sequential epilogue: scoring, bookkeeping, observer, results.
	for j, i := range chunk {
		rt := m.streams[i]
		f := streams[i][tick]
		rt.finishDetect(f, bs.seqs[j], bs.durs[j], &bs.res[j])
		rt.stageFinish(&bs.res[j])
		if obs != nil {
			if err := obs(i, f, bs.res[j]); err != nil {
				return fmt.Errorf("core: stream %d observer: %w", i, err)
			}
		}
		results[i][tick] = bs.res[j]
	}

	m.bmet.batchedFrames.Add(int64(n))
	bs.prune()
	return nil
}

// detectGroup runs one (bundle, serving model) group's batched detector
// pass over its member frames, writing each stream's predictions back
// into that stream's predsBuf for finishDetect.
func (m *MultiRuntime) detectGroup(g *bundleBatch, tick, u int, chunk []int, streams [][]*synth.Frame) {
	frames := g.gframes[u][:0]
	dsts := g.gdsts[u][:0]
	for _, j := range g.members[u] {
		i := chunk[j]
		frames = append(frames, streams[i][tick])
		dsts = append(dsts, m.streams[i].predsBuf)
	}
	out := g.bundle.Detectors[u].DetectBatch(dsts, frames)
	for k, j := range g.members[u] {
		m.streams[chunk[j]].predsBuf = out[k]
	}
	g.gframes[u], g.gdsts[u] = frames, out
}

// tickJob is one (stream, tick) frame dispatched to the unbatched
// worker pool.
type tickJob struct {
	stream, tick int
}

// tickLoop is the unbatched event loop's persistent worker pool: the
// workers live for the whole ProcessStreams call and the pending
// WaitGroup is the per-tick barrier, so advancing a tick costs no
// goroutine churn. Within one tick each ready stream appears exactly
// once, and ticks are separated by the barrier, so no two goroutines
// ever touch one stream's runtime concurrently.
type tickLoop struct {
	m       *MultiRuntime
	streams [][]*synth.Frame
	results [][]FrameResult
	obs     StreamObserver

	jobs    chan tickJob
	workers sync.WaitGroup
	pending sync.WaitGroup

	failed   atomic.Bool
	errOnce  sync.Once
	firstErr error
}

func startTickLoop(m *MultiRuntime, streams [][]*synth.Frame, results [][]FrameResult, obs StreamObserver) *tickLoop {
	l := &tickLoop{
		m:       m,
		streams: streams,
		results: results,
		obs:     obs,
		jobs:    make(chan tickJob),
	}
	for w := 0; w < m.workers; w++ {
		l.workers.Add(1)
		go func() {
			defer l.workers.Done()
			for j := range l.jobs {
				l.run(j)
				l.pending.Done()
			}
		}()
	}
	return l
}

// runTick dispatches one tick's ready streams to the pool and waits for
// the barrier. The WaitGroup edge makes the workers' writes (results,
// firstErr) visible here.
func (l *tickLoop) runTick(tick int, ready []int) error {
	l.pending.Add(len(ready))
	for _, i := range ready {
		l.jobs <- tickJob{stream: i, tick: tick}
	}
	l.pending.Wait()
	if l.failed.Load() {
		return l.firstErr
	}
	return nil
}

func (l *tickLoop) run(j tickJob) {
	if l.failed.Load() {
		return
	}
	f := l.streams[j.stream][j.tick]
	res, err := l.m.streams[j.stream].ProcessFrame(f)
	if err != nil {
		l.fail(fmt.Errorf("core: stream %d: %w", j.stream, err))
		return
	}
	if l.obs != nil {
		if err := l.obs(j.stream, f, res); err != nil {
			l.fail(fmt.Errorf("core: stream %d observer: %w", j.stream, err))
			return
		}
	}
	l.results[j.stream][j.tick] = res
}

func (l *tickLoop) fail(err error) {
	l.errOnce.Do(func() { l.firstErr = err })
	l.failed.Store(true)
}

func (l *tickLoop) stop() {
	close(l.jobs)
	l.workers.Wait()
}
