package core_test

import (
	"math"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// TestRuntimeTelemetryMatchesRunStats is the no-drift guard for the
// dual bookkeeping: the registry's anole_core_* values must equal the
// RunStats a plain (uninstrumented) caller would see.
func TestRuntimeTelemetryMatchesRunStats(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 150)[0]

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0, func() time.Duration { return 0 })
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots: 3,
		Device:     mustSim(device.JetsonTX2NX),
		Metrics:    reg,
		Tracer:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	s := rt.Stats()
	m := telemetry.Map(reg)
	checks := map[string]float64{
		"anole_core_frames_total":                float64(s.Frames),
		"anole_core_switches_total":              float64(s.Switches),
		"anole_core_degraded_frames_total":       float64(s.DegradedFrames),
		"anole_core_fallback_served_total":       float64(s.FallbackServed),
		"anole_core_cold_misses_total":           float64(s.ColdMisses),
		"anole_core_frame_latency_seconds_count": float64(s.Frames),
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if sum := m["anole_core_frame_latency_seconds_sum"]; math.Abs(sum-s.TotalLatency.Seconds()) > 1e-6 {
		t.Errorf("latency sum = %v, RunStats %v", sum, s.TotalLatency.Seconds())
	}

	// Every frame records decide, cache and detect spans (fetch only on
	// absent models, and this runtime has no link). The ring retains the
	// most recent DefaultSpanBuffer spans.
	wantSpans := int64(3 * len(frames))
	if tr.Total() != wantSpans {
		t.Fatalf("recorded %d spans, want %d", tr.Total(), wantSpans)
	}
	spans := tr.Snapshot()
	stages := map[string]int{}
	for _, sp := range spans {
		stages[sp.Stage]++
		if sp.Stream != 0 {
			t.Fatalf("span stream = %d, want 0", sp.Stream)
		}
		if sp.Seq <= 0 {
			t.Fatalf("span seq = %d, want > 0", sp.Seq)
		}
	}
	if stages[telemetry.StageFetch] != 0 {
		t.Fatalf("fetch spans without a link: %d", stages[telemetry.StageFetch])
	}
	if stages[telemetry.StageDecide] == 0 || stages[telemetry.StageCache] == 0 || stages[telemetry.StageDetect] == 0 {
		t.Fatalf("missing stages: %v", stages)
	}
}

// TestMultiRuntimeSharedRegistryAggregates drives several streams over
// one registry and tracer: handle sharing must make the registry the
// cross-stream aggregate, and spans must carry their stream tags.
func TestMultiRuntimeSharedRegistryAggregates(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 3, 50
	frameSets := streamFrames(t, streams, perStream)

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(8192, func() time.Duration { return 0 })
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: 4,
		Workers:    streams,
		Metrics:    reg,
		Tracer:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ProcessStreams(frameSets, nil); err != nil {
		t.Fatal(err)
	}
	agg := m.Stats()
	vals := telemetry.Map(reg)
	if got := vals["anole_core_frames_total"]; got != float64(agg.Frames) {
		t.Fatalf("frames counter = %v, aggregate stats %d", got, agg.Frames)
	}
	if got := vals["anole_core_switches_total"]; got != float64(agg.Switches) {
		t.Fatalf("switches counter = %v, aggregate stats %d", got, agg.Switches)
	}
	if got := vals["anole_modelcache_lookups_total"]; got != float64(agg.Cache.Hits+agg.Cache.Misses) {
		t.Fatalf("cache lookups = %v, want %d", got, agg.Cache.Hits+agg.Cache.Misses)
	}
	if got := vals["anole_core_streams"]; got != streams {
		t.Fatalf("streams gauge = %v", got)
	}

	seen := map[int]bool{}
	for _, sp := range tr.Snapshot() {
		seen[sp.Stream] = true
	}
	for i := 0; i < streams; i++ {
		if !seen[i] {
			t.Fatalf("no spans from stream %d", i)
		}
	}

	// The combined name set must pass the scheme validator.
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("scheme: %v", err)
	}
}

// TestZeroFrameStatsWellDefined pins the zero-frame snapshot contract:
// every derived rate on a fresh runtime must be finite (0, not NaN) and
// the whole RunStats must survive JSON marshaling (encoding/json errors
// on NaN/Inf).
func TestZeroFrameStatsWellDefined(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Stats()
	for name, v := range map[string]float64{
		"MeanSceneDuration": s.MeanSceneDuration(),
		"MissRate":          s.MissRate,
		"Precision":         s.Detection.Precision,
		"Recall":            s.Detection.Recall,
		"F1":                s.Detection.F1,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("zero-frame %s = %v, want finite", name, v)
		}
	}
	if s.Frames != 0 || s.Cache.Hits != 0 {
		t.Fatalf("fresh runtime has history: %+v", s)
	}

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := m.Stats()
	if v := ms.MeanSceneDuration(); v != 0 {
		t.Fatalf("zero-frame multi MeanSceneDuration = %v", v)
	}
	if math.IsNaN(ms.MissRate) || math.IsNaN(ms.Detection.F1) {
		t.Fatalf("zero-frame multi stats have NaN: %+v", ms)
	}
}

// TestRuntimeTelemetryDisabledIsFreeOfSideEffects checks the nil path:
// no registry, no tracer — results must be identical to an instrumented
// run (telemetry must never perturb the pipeline).
func TestRuntimeTelemetryDisabledIsFreeOfSideEffects(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 80)[0]

	run := func(reg *telemetry.Registry, tr *telemetry.Tracer) []core.FrameResult {
		rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			CacheSlots: 3,
			Device:     mustSim(device.JetsonTX2NX),
			Metrics:    reg,
			Tracer:     tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]core.FrameResult, 0, len(frames))
		for _, f := range frames {
			res, err := rt.ProcessFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	plain := run(nil, nil)
	instrumented := run(telemetry.NewRegistry(), telemetry.NewTracer(0, func() time.Duration { return 0 }))
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("frame %d diverged with telemetry on:\n  off %+v\n   on %+v", i, plain[i], instrumented[i])
		}
	}
}
