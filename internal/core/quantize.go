package core

import (
	"fmt"

	"anole/internal/detect"
)

// QuantizeBundle returns a copy of the bundle whose compressed detectors
// carry post-training-quantized weights at the given bit width. The scene
// encoder and decision head stay full precision: they are tiny and their
// embeddings drive both model selection and novelty scoring, where grid
// error compounds. Serialization stores quantized models as integers, so
// the device download shrinks by roughly 64/bits for the repertoire.
func QuantizeBundle(b *Bundle, bits int) (*Bundle, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	detectors := make([]*detect.Detector, len(b.Detectors))
	for i, d := range b.Detectors {
		qw, err := d.Weights().Quantize(bits)
		if err != nil {
			return nil, fmt.Errorf("core: quantize %s: %w", d.Name, err)
		}
		qd, err := detect.FromWeights(d.Name, d.Arch, d.FeatDim(), qw)
		if err != nil {
			return nil, fmt.Errorf("core: quantize %s: %w", d.Name, err)
		}
		detectors[i] = qd
	}
	out := &Bundle{
		Encoder:      b.Encoder,
		Decision:     b.Decision,
		Detectors:    detectors,
		Infos:        append([]ModelInfo(nil), b.Infos...),
		FeatDim:      b.FeatDim,
		Centroids:    b.Centroids,
		NoveltyScale: b.NoveltyScale,
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// RepertoireWeightBytes sums the serialized parameter bytes of the
// compressed-model repertoire (the dominant share of a device download).
func (b *Bundle) RepertoireWeightBytes() int64 {
	var total int64
	for _, d := range b.Detectors {
		total += d.WeightBytes()
	}
	return total
}
