package core_test

import (
	"testing"

	"anole/internal/core"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/testutil"
)

// TestRuntimeCacheBytesMatchWeightSizes pins the byte-level residency
// accounting: NewRuntime wires the cache's sizer to the bundle's frozen
// weights, so after any run BytesUsed must equal the summed
// Weights.SizeBytes of exactly the resident detectors.
func TestRuntimeCacheBytesMatchWeightSizes(t *testing.T) {
	fx := testutil.Shared(t)
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) > 150 {
		frames = frames[:150]
	}

	sizeOf := make(map[string]int64, len(fx.Bundle.Detectors))
	for _, d := range fx.Bundle.Detectors {
		if d.SizeBytes() <= 0 {
			t.Fatalf("detector %s reports non-positive size %d", d.Name, d.SizeBytes())
		}
		sizeOf[d.Name] = d.SizeBytes()
	}

	for name, store := range map[string]interface {
		core.ModelStore
		Keys() []string
		BytesUsed() int64
	}{
		"cache":   modelcache.MustNew(3, modelcache.LFU),
		"sharded": modelcache.MustNewSharded(3, modelcache.LFU, 2),
	} {
		rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		keys := store.Keys()
		if len(keys) == 0 {
			t.Fatalf("%s: no models resident after %d frames", name, len(frames))
		}
		var want int64
		for _, k := range keys {
			sz, ok := sizeOf[k]
			if !ok {
				t.Fatalf("%s: resident key %q is not a bundle detector", name, k)
			}
			want += sz
		}
		if got := store.BytesUsed(); got != want {
			t.Fatalf("%s: BytesUsed %d, summed Weights.SizeBytes of residents %d", name, got, want)
		}
	}
}
