package core_test

import (
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// benchRuntime builds a runtime over the shared fixture, optionally
// instrumented. Both variants use the same cache implementation (the
// metrics-enabled constructor path) so the benchmark isolates the cost
// of the telemetry writes themselves, not a cache swap.
func benchRuntime(b *testing.B, reg *telemetry.Registry, tr *telemetry.Tracer) (*core.Runtime, []*synth.Frame) {
	b.Helper()
	fx := testutil.Shared(b)
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		b.Fatal("fixture has no test frames")
	}
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
		CacheSlots: 3,
		Device:     mustSim(device.JetsonTX2NX),
		Metrics:    reg,
		Tracer:     tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt, frames
}

// BenchmarkProcessFrame_TelemetryOff is the baseline for the telemetry
// overhead comparison: the full per-frame pipeline with nil registry
// and tracer (every metric write is a nil-receiver no-op).
func BenchmarkProcessFrame_TelemetryOff(b *testing.B) {
	rt, frames := benchRuntime(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.ProcessFrame(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessFrame_TelemetryOn measures the instrumented hot path:
// live counters, latency histograms and a full span ring. Compare
// against BenchmarkProcessFrame_TelemetryOff; the acceptance budget for
// this PR is <2% overhead.
func BenchmarkProcessFrame_TelemetryOn(b *testing.B) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0, func() time.Duration { return 0 })
	rt, frames := benchRuntime(b, reg, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.ProcessFrame(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTelemetryOverheadBounded runs the off/on comparison in-process
// and fails only on gross regressions. The real acceptance number
// (<2%) is checked by running the two benchmarks above with -benchtime
// high enough to quiet scheduler noise; this smoke test uses a
// deliberately loose bound so it stays reliable on loaded CI machines
// while still catching an accidentally hot telemetry path (e.g. a
// mutex or allocation slipping into the per-frame writes).
func TestTelemetryOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceDetectorEnabled {
		// The race detector instruments every atomic and mutex — the
		// exact operations telemetry adds — so the ratio under -race
		// measures the detector, not the telemetry.
		t.Skip("timing comparison meaningless under -race")
	}
	off := testing.Benchmark(BenchmarkProcessFrame_TelemetryOff)
	on := testing.Benchmark(BenchmarkProcessFrame_TelemetryOn)
	if off.N == 0 || off.NsPerOp() == 0 {
		t.Skip("baseline benchmark did not run")
	}
	ratio := float64(on.NsPerOp()) / float64(off.NsPerOp())
	t.Logf("telemetry overhead: off=%v/op on=%v/op ratio=%.4f",
		time.Duration(off.NsPerOp()), time.Duration(on.NsPerOp()), ratio)
	if ratio > 1.5 {
		t.Fatalf("instrumented frame path %.1f%% slower than disabled (smoke bound 50%%)", (ratio-1)*100)
	}
}

// BenchmarkFrameStep is the allocation-regression anchor for the
// frozen-weights execution model: the full ProcessFrame pipeline
// (scene-encode + decision head + cache + detect) on shared immutable
// weights with reused per-runtime buffers. CI runs it as a smoke test
// and tracks allocs/op — the neural-network stages contribute zero.
func BenchmarkFrameStep(b *testing.B) {
	rt, frames := benchRuntime(b, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.ProcessFrame(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}
