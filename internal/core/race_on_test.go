//go:build race

package core_test

// raceDetectorEnabled mirrors the -race build tag so timing-sensitive
// tests can skip: the detector multiplies the cost of exactly the
// atomics and mutexes the telemetry comparison measures.
const raceDetectorEnabled = true
