package core

import (
	"fmt"

	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// ProfileConfig parameterizes the full offline scene-profiling pipeline.
// Sub-config RNGs are ignored; all randomness derives from Seed.
type ProfileConfig struct {
	// Seed is the root of every stream used during profiling.
	Seed uint64
	// Encoder configures M_scene training (TCM step 1).
	Encoder scene.EncoderConfig
	// Repertoire configures Algorithm 1 (TCM step 2).
	Repertoire scene.RepertoireConfig
	// Sampling configures adaptive scene sampling (ASS).
	Sampling sampling.Config
	// Decision configures M_decision training (TDM).
	Decision decision.Config
}

// DefaultProfileConfig returns the configuration used by the experiment
// harness: a 19-model repertoire as in the paper, modest training budgets
// sized for the synthetic substrate.
func DefaultProfileConfig(seed uint64) ProfileConfig {
	return ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 30},
		Repertoire: scene.RepertoireConfig{
			N:     19,
			Delta: 0.3,
			MaxK:  12,
			Train: detect.TrainConfig{Epochs: 30},
		},
		Sampling: sampling.Config{Kappa: 2500, Theta: 0.95, AcceptF1: 0.4},
		Decision: decision.Config{Epochs: 60, Hidden: []int{24}, Patience: 8},
	}
}

// Profile runs Offline Scene Profiling end to end on the corpus: train
// M_scene on the training split, bank compressed models with Algorithm 1,
// build the balanced decision training set with Thompson sampling, and
// train M_decision. The result is a deployable Bundle.
func Profile(corpus *synth.Corpus, cfg ProfileConfig) (*Bundle, error) {
	if corpus == nil || len(corpus.Clips) == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	train := corpus.Frames(synth.Train)
	val := corpus.Frames(synth.Val)
	if len(train) == 0 {
		return nil, fmt.Errorf("core: corpus has no training frames")
	}

	// TCM step 1: scene representation learning.
	encCfg := cfg.Encoder
	encCfg.RNG = xrand.NewLabeled(cfg.Seed, "profile-encoder")
	enc, err := scene.TrainEncoder(train, val, encCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// TCM step 2: Algorithm 1 multi-level clustering + model banking.
	repCfg := cfg.Repertoire
	repCfg.RNG = xrand.NewLabeled(cfg.Seed, "profile-repertoire")
	bank, err := scene.TrainCompressedModels(enc, train, val, repCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// ASS: balanced sampling of the models' implicit distributions.
	detectors := make([]*detect.Detector, len(bank))
	pools := make([]sampling.Pool, len(bank))
	infos := make([]ModelInfo, len(bank))
	for i, b := range bank {
		detectors[i] = b.Detector
		pools[i] = sampling.Pool{ModelIdx: i, Frames: b.PoolFrames(train)}
		infos[i] = ModelInfo{
			Name:        b.Detector.Name,
			Level:       b.Level,
			Cluster:     b.Cluster,
			TrainScenes: append([]int(nil), b.TrainScenes...),
			ValF1:       b.ValF1,
		}
	}
	sampCfg := cfg.Sampling
	sampCfg.RNG = xrand.NewLabeled(cfg.Seed, "profile-sampling")
	sampled, err := sampling.Adaptive(detectors, pools, sampCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(sampled.Samples) == 0 {
		return nil, fmt.Errorf("core: adaptive sampling accepted no samples; lower Sampling.AcceptF1")
	}

	// TDM: decision model on the frozen encoder.
	decCfg := cfg.Decision
	decCfg.RNG = xrand.NewLabeled(cfg.Seed, "profile-decision")
	dec, err := decision.Train(enc, sampled.Samples, len(detectors), decCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Temperature-scale the head on the tail of the sampling output so
	// suitability probabilities are honest confidences (ranking — and
	// thus accuracy — is unaffected).
	if calib := sampled.Samples[len(sampled.Samples)*4/5:]; len(calib) >= 20 {
		if _, err := dec.CalibrateTemperature(calib); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	bundle := &Bundle{
		Encoder:   enc,
		Decision:  dec,
		Detectors: detectors,
		Infos:     infos,
		FeatDim:   train[0].FeatDim(),
	}
	bundle.CalibrateNovelty(train)
	if err := bundle.Validate(); err != nil {
		return nil, err
	}
	return bundle, nil
}
