package core_test

import (
	"testing"
	"testing/quick"

	"anole/internal/core"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// Property: across random frame streams, cache sizes and policies, the
// runtime's statistics stay internally consistent — desired/used counts
// sum to the frame count, scene durations partition the stream, cache
// counters cover every frame, and metrics stay in range.
func TestRuntimeInvariantsProperty(t *testing.T) {
	fx := testutil.Shared(t)
	policies := []modelcache.Policy{modelcache.LFU, modelcache.LRU, modelcache.FIFO}
	check := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			CacheSlots:       rng.Intn(fx.Bundle.NumModels()) + 1,
			Policy:           policies[rng.Intn(len(policies))],
			SwitchHysteresis: rng.Intn(4),
		})
		if err != nil {
			return false
		}
		nFrames := rng.Intn(60) + 5
		for i := 0; i < nFrames; i++ {
			scene := synth.SceneFromIndex(rng.Intn(synth.NumScenes))
			f := fx.World.GenerateFrame(scene, rng.Float64()*1.5, rng)
			res, err := rt.ProcessFrame(f)
			if err != nil {
				return false
			}
			if res.Desired < 0 || res.Desired >= fx.Bundle.NumModels() {
				return false
			}
			if res.Used < 0 || res.Used >= fx.Bundle.NumModels() {
				return false
			}
			if res.Confidence < 0 || res.Confidence > 1 || res.Novelty < 0 {
				return false
			}
			if res.Metrics.F1 < 0 || res.Metrics.F1 > 1 {
				return false
			}
		}
		st := rt.Stats()
		if st.Frames != nFrames {
			return false
		}
		var desired, used, durations int
		for _, c := range st.DesiredCounts {
			desired += c
		}
		for _, c := range st.UsedCounts {
			used += c
		}
		for _, d := range st.SceneDurations {
			if d <= 0 {
				return false
			}
			durations += d
		}
		if desired != nFrames || used != nFrames || durations != nFrames {
			return false
		}
		if int(st.Cache.Hits+st.Cache.Misses) != nFrames {
			return false
		}
		if st.MissRate < 0 || st.MissRate > 1 {
			return false
		}
		if st.Switches != len(st.SceneDurations)-1 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the uncertainty buffer never exceeds capacity and its flag
// rate is consistent with what it observed.
func TestUncertaintyBufferProperty(t *testing.T) {
	fx := testutil.Shared(t)
	frame := fx.Corpus.Frames(synth.Test)[0]
	check := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		capacity := rng.Intn(10) + 1
		threshold := rng.Float64()*2 + 0.1
		buf, err := core.NewUncertaintyBuffer(threshold, capacity)
		if err != nil {
			return false
		}
		flagged := 0
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			nov := rng.Float64() * 3
			if buf.Observe(frame, core.FrameResult{Novelty: nov}) {
				flagged++
				if nov <= threshold {
					return false
				}
			} else if nov > threshold {
				return false
			}
		}
		if buf.Len() > capacity || buf.Len() > flagged {
			return false
		}
		want := float64(flagged) / float64(n)
		return buf.FlagRate() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
