//go:build !race

package core_test

const raceDetectorEnabled = false
