package core_test

import (
	"testing"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// prewarmCache admits every repertoire model so subsequent requests are
// hits regardless of stream interleaving — the precondition for exact
// cross-mode result comparison.
func prewarmCache(t *testing.T, store core.ModelStore, b *core.Bundle) {
	t.Helper()
	for _, det := range b.Detectors {
		if _, _, err := store.Request(det.Name, 1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiRuntimeBatchedSingleStreamMatchesRuntime is the batched
// path's determinism guard: one stream with Batch on must be
// frame-for-frame bit-identical to the plain Runtime — including cold
// cache admissions, hysteresis smoothing and simulated latency —
// because the batched kernels preserve summation order and the cache
// backbone runs sequentially.
func TestMultiRuntimeBatchedSingleStreamMatchesRuntime(t *testing.T) {
	fx := testutil.Shared(t)
	frames := streamFrames(t, 1, 120)[0]

	for _, hysteresis := range []int{0, 3} {
		single, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           mustSim(device.JetsonTX2NX),
		})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          1,
			CacheSlots:       3,
			SwitchHysteresis: hysteresis,
			Device:           &device.JetsonTX2NX,
			Batch:            true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer multi.Close()

		want := make([]core.FrameResult, 0, len(frames))
		for _, f := range frames {
			res, err := single.ProcessFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}
		got, err := multi.ProcessStreams([][]*synth.Frame{frames}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[0][i] != want[i] {
				t.Fatalf("hysteresis %d: frame %d diverged:\nbatched %+v\n single %+v",
					hysteresis, i, got[0][i], want[i])
			}
		}
		ss, ms := single.Stats(), multi.Stats()
		if ss.Frames != ms.Frames || ss.Switches != ms.Switches ||
			ss.Detection != ms.Detection || ss.TotalLatency != ms.TotalLatency {
			t.Fatalf("hysteresis %d: aggregate stats diverged:\nbatched %+v\n single %+v", hysteresis, ms, ss)
		}
	}
}

// TestMultiRuntimeBatchedMatchesUnbatched pins batch-on against
// batch-off over several streams sharing one pre-warmed all-models
// cache: with admission order neutralized, every per-frame result and
// every per-stream stat must be bit-identical across the two modes.
func TestMultiRuntimeBatchedMatchesUnbatched(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 6, 50
	frameSets := streamFrames(t, streams, perStream)

	run := func(batch bool) ([][]core.FrameResult, []core.RunStats) {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          streams,
			CacheSlots:       fx.Bundle.NumModels(),
			CacheShards:      1,
			SwitchHysteresis: 2,
			Device:           &device.JetsonTX2NX,
			Batch:            batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		prewarmCache(t, m.Cache(), fx.Bundle)
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]core.RunStats, streams)
		for s := range stats {
			stats[s] = m.StreamStats(s)
		}
		return results, stats
	}

	batched, bstats := run(true)
	plain, pstats := run(false)
	for s := 0; s < streams; s++ {
		for i := range plain[s] {
			if batched[s][i] != plain[s][i] {
				t.Fatalf("stream %d frame %d diverged:\n batched %+v\nunbatched %+v",
					s, i, batched[s][i], plain[s][i])
			}
		}
		bs, ps := bstats[s], pstats[s]
		if bs.Frames != ps.Frames || bs.Switches != ps.Switches ||
			bs.Detection != ps.Detection || bs.TotalLatency != ps.TotalLatency ||
			bs.FallbackServed != ps.FallbackServed {
			t.Fatalf("stream %d stats diverged:\n batched %+v\nunbatched %+v", s, bs, ps)
		}
	}
}

// TestMultiRuntimeBatchedDeterministic runs the batched loop twice over
// a deliberately contended cache (fewer slots than models, no prewarm):
// the sequential resolve backbone makes the whole run a deterministic
// function of its input, so two fresh MultiRuntimes must agree on every
// frame — a guarantee the concurrent unbatched mode cannot make.
func TestMultiRuntimeBatchedDeterministic(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 5, 40
	frameSets := streamFrames(t, streams, perStream)

	run := func() [][]core.FrameResult {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:          streams,
			CacheSlots:       2,
			CacheShards:      1,
			SwitchHysteresis: 2,
			Policy:           modelcache.LFU,
			Batch:            true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	first, second := run(), run()
	for s := 0; s < streams; s++ {
		for i := range first[s] {
			if first[s][i] != second[s][i] {
				t.Fatalf("stream %d frame %d not deterministic:\n first %+v\nsecond %+v",
					s, i, first[s][i], second[s][i])
			}
		}
	}
}

// TestMultiRuntimeBatchedObserverOrder pins the batched observer
// contract: calls arrive serialized in strict (tick, stream) order, so
// an observer needs no locks and sees streams advance in lockstep —
// never two frames of one stream before every ready stream has had its
// turn at the earlier tick.
func TestMultiRuntimeBatchedObserverOrder(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 15
	frameSets := streamFrames(t, streams, perStream)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: streams,
		Batch:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var order []int
	perStreamSeen := make([]int, streams)
	_, err = m.ProcessStreams(frameSets, func(stream int, f *synth.Frame, res core.FrameResult) error {
		order = append(order, stream)
		perStreamSeen[stream]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != streams*perStream {
		t.Fatalf("observer saw %d calls, want %d", len(order), streams*perStream)
	}
	for i, s := range order {
		tick, within := i/streams, i%streams
		if s != within {
			t.Fatalf("call %d (tick %d): stream %d, want %d — not (tick, stream) order", i, tick, s, within)
		}
	}
	for s, n := range perStreamSeen {
		if n != perStream {
			t.Fatalf("stream %d observed %d frames, want %d", s, n, perStream)
		}
	}
}

// TestMultiRuntimeBatchedUnequalLengths drives streams of different
// lengths (including an empty one) through the batched loop: ticks must
// stay fair as short streams drain, every produced result must match
// the unbatched run, and the occupancy gauge must end at the final
// tick's ready fraction.
func TestMultiRuntimeBatchedUnequalLengths(t *testing.T) {
	fx := testutil.Shared(t)
	base := streamFrames(t, 1, 9)[0]
	frameSets := [][]*synth.Frame{base, base[:4], nil, base[:7]}
	const streams = 4

	run := func(batch bool, reg *telemetry.Registry) [][]core.FrameResult {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:     streams,
			CacheSlots:  fx.Bundle.NumModels(),
			CacheShards: 1,
			Batch:       batch,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		prewarmCache(t, m.Cache(), fx.Bundle)
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	reg := telemetry.NewRegistry()
	batched := run(true, reg)
	plain := run(false, nil)
	for s := range frameSets {
		if len(batched[s]) != len(frameSets[s]) {
			t.Fatalf("stream %d: %d results for %d frames", s, len(batched[s]), len(frameSets[s]))
		}
		for i := range plain[s] {
			if batched[s][i] != plain[s][i] {
				t.Fatalf("stream %d frame %d diverged:\n batched %+v\nunbatched %+v",
					s, i, batched[s][i], plain[s][i])
			}
		}
	}
	// The last tick (index 8) has 1 of 4 streams ready.
	if occ := reg.Gauge("anole_core_tick_occupancy", "").Value(); occ != 0.25 {
		t.Fatalf("final tick occupancy %v, want 0.25", occ)
	}
}

// TestMultiRuntimeBatchMetricsAndChunking pins the batch telemetry and
// the MaxBatch chunking rule: 10 ready streams with MaxBatch 4 must
// dispatch ceil(10/4)=3 chunks per tick, carry every frame through the
// batched path, and still produce results identical to one un-chunked
// dispatch.
func TestMultiRuntimeBatchMetricsAndChunking(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 10, 12
	frameSets := streamFrames(t, streams, perStream)

	run := func(maxBatch int, reg *telemetry.Registry) [][]core.FrameResult {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:     streams,
			CacheSlots:  fx.Bundle.NumModels(),
			CacheShards: 1,
			Batch:       true,
			MaxBatch:    maxBatch,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		prewarmCache(t, m.Cache(), fx.Bundle)
		results, err := m.ProcessStreams(frameSets, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	reg := telemetry.NewRegistry()
	chunked := run(4, reg)
	whole := run(0, nil)
	for s := 0; s < streams; s++ {
		for i := range whole[s] {
			if chunked[s][i] != whole[s][i] {
				t.Fatalf("stream %d frame %d: chunked %+v, whole %+v", s, i, chunked[s][i], whole[s][i])
			}
		}
	}
	wantDispatches := int64(perStream * 3) // ceil(10/4) chunks per tick
	if got := reg.Counter("anole_core_batch_dispatches_total", "").Value(); got != wantDispatches {
		t.Fatalf("batch dispatches %d, want %d", got, wantDispatches)
	}
	if got := reg.Counter("anole_core_batched_frames_total", "").Value(); got != int64(streams*perStream) {
		t.Fatalf("batched frames %d, want %d", got, streams*perStream)
	}
	if got := reg.Histogram("anole_core_batch_size_frames", "", nil).Count(); got != wantDispatches {
		t.Fatalf("batch size observations %d, want %d", got, wantDispatches)
	}
}

// TestMultiRuntimeBatchedStressMatchesSequential is the 1k-stream
// equivalence stress: 1024 streams × 4 frames through the batched
// MultiRuntime (chunked decide batches, parallel per-model detector
// groups) against a pre-warmed all-models cache, with every stream's
// results compared bit-for-bit to a sequential single-stream Runtime
// pass over the same frames. Run with -race: the detector groups are
// the only concurrent stage and must stay disjoint.
func TestMultiRuntimeBatchedStressMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-stream stress skipped in -short")
	}
	fx := testutil.Shared(t)
	streams := 1024
	if raceDetectorEnabled {
		// The detector multiplies per-frame cost; keep the stress
		// meaningful but bounded under -race.
		streams = 256
	}
	const perStream = 4
	frameSets := streamFrames(t, streams, perStream)
	slots := fx.Bundle.NumModels()

	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:          streams,
		CacheSlots:       slots,
		CacheShards:      1,
		SwitchHysteresis: 2,
		Device:           &device.JetsonTX2NX,
		Batch:            true,
		MaxBatch:         256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	prewarmCache(t, m.Cache(), fx.Bundle)

	results, err := m.ProcessStreams(frameSets, nil)
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < streams; s++ {
		store := modelcache.MustNew(slots, modelcache.LFU)
		prewarmCache(t, store, fx.Bundle)
		single, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{
			Store:            store,
			SwitchHysteresis: 2,
			Device:           mustSim(device.JetsonTX2NX),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range frameSets[s] {
			want, err := single.ProcessFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			if results[s][i] != want {
				t.Fatalf("stream %d frame %d diverged:\n   batched %+v\nsequential %+v",
					s, i, results[s][i], want)
			}
		}
	}
}
