package core_test

import (
	"testing"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// mustSim builds a simulator for a known-good registry profile.
func mustSim(p device.Profile) *device.Simulator {
	sim, err := device.NewSimulator(p)
	if err != nil {
		panic(err)
	}
	return sim
}

func TestProfileProducesValidBundle(t *testing.T) {
	fx := testutil.Shared(t)
	b := fx.Bundle
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.NumModels() < 2 {
		t.Fatalf("repertoire size %d", b.NumModels())
	}
	for i, info := range b.Infos {
		if info.Name != b.Detectors[i].Name {
			t.Fatalf("info %d name mismatch: %q vs %q", i, info.Name, b.Detectors[i].Name)
		}
		if len(info.TrainScenes) == 0 {
			t.Fatalf("model %d has no scenes", i)
		}
	}
}

func TestProfileRejectsEmptyCorpus(t *testing.T) {
	if _, err := core.Profile(nil, core.DefaultProfileConfig(1)); err == nil {
		t.Fatal("nil corpus accepted")
	}
	if _, err := core.Profile(&synth.Corpus{}, core.DefaultProfileConfig(1)); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestBundleValidate(t *testing.T) {
	fx := testutil.Shared(t)
	good := *fx.Bundle
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Encoder = nil
	if bad.Validate() == nil {
		t.Fatal("missing encoder accepted")
	}
	bad = good
	bad.Infos = bad.Infos[:1]
	if bad.Validate() == nil {
		t.Fatal("info count mismatch accepted")
	}
	bad = good
	bad.Detectors = nil
	if bad.Validate() == nil {
		t.Fatal("empty repertoire accepted")
	}
	var nilB *core.Bundle
	if nilB.Validate() == nil {
		t.Fatal("nil bundle accepted")
	}
}

func TestBundleCosts(t *testing.T) {
	fx := testutil.Shared(t)
	b := fx.Bundle
	mc := b.ModelCost(0, 64)
	if mc.FLOPsPerInference <= 0 || mc.WeightBytes <= 0 || mc.Name == "" {
		t.Fatalf("model cost: %+v", mc)
	}
	dc := b.DecisionCost()
	if dc.FLOPsPerInference <= 0 {
		t.Fatalf("decision cost: %+v", dc)
	}
	// Decision per-frame cost must be below a full-frame detection.
	if dc.FLOPsPerInference >= mc.FLOPsPerInference {
		t.Fatal("decision should be cheaper than per-frame detection")
	}
}

func TestRuntimeProcessFrame(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		t.Fatal("no test frames")
	}
	for _, f := range frames[:50] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Desired < 0 || res.Desired >= fx.Bundle.NumModels() {
			t.Fatalf("desired %d", res.Desired)
		}
		if res.Used < 0 || res.Used >= fx.Bundle.NumModels() {
			t.Fatalf("used %d", res.Used)
		}
		if res.Confidence <= 0 || res.Confidence > 1 {
			t.Fatalf("confidence %v", res.Confidence)
		}
		if res.Hit && res.Used != res.Desired {
			t.Fatal("hit must use the desired model")
		}
	}
	st := rt.Stats()
	if st.Frames != 50 {
		t.Fatalf("frames = %d", st.Frames)
	}
	var desiredSum int
	for _, c := range st.DesiredCounts {
		desiredSum += c
	}
	if desiredSum != 50 {
		t.Fatalf("desired counts sum %d", desiredSum)
	}
	var durSum int
	for _, d := range st.SceneDurations {
		durSum += d
	}
	if durSum != 50 {
		t.Fatalf("scene durations sum %d, want 50", durSum)
	}
	if st.MeanSceneDuration() <= 0 {
		t.Fatal("mean scene duration not positive")
	}
}

func TestRuntimeRejectsBadInput(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ProcessFrame(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	// Frame with wrong feature dimension.
	cfg := synth.DefaultConfig(7)
	cfg.FeatDim = 4
	w2, err := synth.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := w2.GenerateFrame(synth.Scene{}, 1, xrand.New(1))
	if _, err := rt.ProcessFrame(f); err == nil {
		t.Fatal("wrong feat dim accepted")
	}
}

func TestRuntimeFirstFrameAlwaysServed(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := fx.Corpus.Frames(synth.Test)[0]
	res, err := rt.ProcessFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("first frame cannot hit an empty cache")
	}
	if res.Used != res.Desired {
		t.Fatal("first frame should load and use the desired model")
	}
}

func TestRuntimeWithDeviceChargesLatency(t *testing.T) {
	fx := testutil.Shared(t)
	sim := mustSim(device.JetsonTX2NX)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 2, Device: sim})
	if err != nil {
		t.Fatal(err)
	}
	frames := fx.Corpus.Frames(synth.Test)
	first, err := rt.ProcessFrame(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Latency <= 0 {
		t.Fatal("no latency charged")
	}
	// The first frame pays model load + framework init; a later hit on
	// the same model must be much cheaper (Fig. 4a shape).
	var hitLatency int64
	for _, f := range frames[1:40] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit {
			hitLatency = int64(res.Latency)
			break
		}
	}
	if hitLatency == 0 {
		t.Skip("no cache hit in 40 frames")
	}
	if hitLatency >= int64(first.Latency) {
		t.Fatalf("hit latency %d not below cold first frame %d", hitLatency, int64(first.Latency))
	}
	if sim.EnergyJ() <= 0 || sim.Inferences() == 0 {
		t.Fatal("device counters not advanced")
	}
	if rt.Stats().TotalLatency <= 0 {
		t.Fatal("total latency not accumulated")
	}
}

func TestRuntimeCacheBoundsResidency(t *testing.T) {
	fx := testutil.Shared(t)
	sim := mustSim(device.JetsonNano)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 2, Device: sim})
	if err != nil {
		t.Fatal(err)
	}
	maxResident := fx.Bundle.ModelCost(0, 64).LoadMemoryMB() * 2.5
	frames80 := fx.Corpus.Frames(synth.Test)
	if len(frames80) > 80 {
		frames80 = frames80[:80]
	}
	for _, f := range frames80 {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
		if sim.ResidentMemoryMB() > maxResident {
			t.Fatalf("resident %vMB exceeds 2-slot bound %vMB", sim.ResidentMemoryMB(), maxResident)
		}
	}
}

func TestRuntimeProcessClipWindows(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	frames := fx.Corpus.Frames(synth.Test)[:25]
	f1s, err := rt.ProcessClip(frames, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1s) != 3 {
		t.Fatalf("windows = %d", len(f1s))
	}
	for _, v := range f1s {
		if v < 0 || v > 1 {
			t.Fatalf("window F1 %v", v)
		}
	}
}

func TestRuntimeAccuracyBeatsRandomSelection(t *testing.T) {
	// Anole's selection should beat picking a fixed arbitrary
	// repertoire model for everything.
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) > 300 {
		frames = frames[:300]
	}
	for _, f := range frames {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	anoleF1 := rt.Stats().Detection.F1

	worst := 1.0
	for _, det := range fx.Bundle.Detectors {
		if f1 := det.EvaluateFrames(frames).F1; f1 < worst {
			worst = f1
		}
	}
	if anoleF1 <= worst {
		t.Fatalf("Anole F1 %v not above worst fixed model %v", anoleF1, worst)
	}
}

func TestRuntimeSelectorSurface(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "Anole" {
		t.Fatalf("name %q", rt.Name())
	}
	if len(rt.Detectors()) != fx.Bundle.NumModels() {
		t.Fatal("detectors surface wrong")
	}
	if rt.OverheadFLOPs() != fx.Bundle.Decision.FLOPs() {
		t.Fatal("overhead wrong")
	}
	f := fx.Corpus.Frames(synth.Test)[0]
	if det := rt.Select(f); det == nil {
		t.Fatal("Select returned nil")
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := core.NewRuntime(&core.Bundle{}, core.RuntimeConfig{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
	fx := testutil.Shared(t)
	if _, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{Policy: modelcache.Policy(99)}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestRuntimeDeterministic(t *testing.T) {
	fx := testutil.Shared(t)
	run := func() core.RunStats {
		rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
		if err != nil {
			t.Fatal(err)
		}
		frames := fx.Corpus.Frames(synth.Test)
		if len(frames) > 100 {
			frames = frames[:100]
		}
		for _, f := range frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		return rt.Stats()
	}
	a, b := run(), run()
	if a.Switches != b.Switches || a.MissRate != b.MissRate || a.Detection.F1 != b.Detection.F1 {
		t.Fatal("runtime not deterministic")
	}
}

func TestNoveltyCalibration(t *testing.T) {
	fx := testutil.Shared(t)
	if len(fx.Bundle.Centroids) == 0 || fx.Bundle.NoveltyScale <= 0 {
		t.Fatal("Profile should calibrate novelty")
	}
	// In-distribution frames score low; a scene outside every dataset
	// profile scores much higher.
	var inDist, novel float64
	test := fx.Corpus.Frames(synth.Test)
	n := 30
	if len(test) < n {
		n = len(test)
	}
	for _, f := range test[:n] {
		inDist += fx.Bundle.Novelty(f)
	}
	inDist /= float64(n)
	rng := xrand.New(777)
	novelScene := synth.Scene{Weather: synth.Foggy, Location: synth.TollBooth, Time: synth.Night}
	for i := 0; i < n; i++ {
		novel += fx.Bundle.Novelty(fx.World.GenerateFrame(novelScene, 1, rng))
	}
	novel /= float64(n)
	if novel <= 2*inDist {
		t.Fatalf("novel-scene novelty %v not well above in-distribution %v", novel, inDist)
	}
	// Uncalibrated bundles report zero.
	bare := *fx.Bundle
	bare.Centroids = nil
	if bare.Novelty(test[0]) != 0 {
		t.Fatal("uncalibrated bundle should report 0 novelty")
	}
}

func TestRuntimeReportsNovelty(t *testing.T) {
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.ProcessFrame(fx.Corpus.Frames(synth.Test)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Novelty < 0 {
		t.Fatalf("novelty %v", res.Novelty)
	}
}
