package decision

import (
	"math"
	"testing"

	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// fixture holds two scene-specialist detectors, an encoder and labeled
// samples for decision-model training.
type fixture struct {
	world   *synth.World
	enc     *scene.Encoder
	models  []*detect.Detector
	samples []sampling.LabeledFrame
	sceneA  synth.Scene
	sceneB  synth.Scene
}

func buildFixture(t *testing.T, seed uint64) fixture {
	t.Helper()
	w, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed + 1)
	fx := fixture{
		world:  w,
		sceneA: synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime},
		sceneB: synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Night},
	}
	gen := func(s synth.Scene, n int) []*synth.Frame {
		frames := make([]*synth.Frame, n)
		for i := range frames {
			frames[i] = w.GenerateFrame(s, 1.2, rng)
		}
		return frames
	}
	poolA := gen(fx.sceneA, 120)
	poolB := gen(fx.sceneB, 120)

	fx.enc, err = scene.TrainEncoder(append(append([]*synth.Frame{}, poolA...), poolB...), nil,
		scene.EncoderConfig{Epochs: 20, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	mkDet := func(name string, frames []*synth.Frame) *detect.Detector {
		d := detect.NewDetector(name, detect.Compressed, 8, rng)
		if err := d.Train(frames, nil, detect.TrainConfig{Epochs: 12, RNG: rng}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	fx.models = []*detect.Detector{mkDet("A", poolA), mkDet("B", poolB)}
	for i, f := range poolA {
		if i%2 == 0 {
			fx.samples = append(fx.samples, sampling.LabeledFrame{Frame: f, ModelIdx: 0})
		}
	}
	for i, f := range poolB {
		if i%2 == 0 {
			fx.samples = append(fx.samples, sampling.LabeledFrame{Frame: f, ModelIdx: 1})
		}
	}
	return fx
}

func TestTrainAndSelect(t *testing.T) {
	fx := buildFixture(t, 200)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 40, RNG: xrand.New(201)})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(202)
	correct := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		fa := fx.world.GenerateFrame(fx.sceneA, 1.2, rng)
		fb := fx.world.GenerateFrame(fx.sceneB, 1.2, rng)
		if best, _ := m.Best(fa); best == 0 {
			correct++
		}
		if best, _ := m.Best(fb); best == 1 {
			correct++
		}
	}
	acc := float64(correct) / float64(2*trials)
	if acc < 0.8 {
		t.Fatalf("decision accuracy = %v, want > 0.8", acc)
	}
}

func TestScoresAreDistribution(t *testing.T) {
	fx := buildFixture(t, 203)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 10, RNG: xrand.New(204)})
	if err != nil {
		t.Fatal(err)
	}
	f := fx.world.GenerateFrame(fx.sceneA, 1, xrand.New(205))
	scores := m.Scores(f)
	if len(scores) != 2 {
		t.Fatalf("scores len = %d", len(scores))
	}
	var sum float64
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
}

func TestRankConsistentWithScores(t *testing.T) {
	fx := buildFixture(t, 206)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 10, RNG: xrand.New(207)})
	if err != nil {
		t.Fatal(err)
	}
	f := fx.world.GenerateFrame(fx.sceneB, 1, xrand.New(208))
	scores := m.Scores(f)
	rank := m.Rank(f)
	if len(rank) != 2 {
		t.Fatalf("rank len = %d", len(rank))
	}
	if scores[rank[0]] < scores[rank[1]] {
		t.Fatal("rank not descending")
	}
	best, conf := m.Best(f)
	if best != rank[0] {
		t.Fatal("Best disagrees with Rank")
	}
	if conf != scores[best] {
		t.Fatal("confidence is not the top score")
	}
}

func TestTrainValidation(t *testing.T) {
	fx := buildFixture(t, 209)
	if _, err := Train(nil, fx.samples, 2, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("nil encoder accepted")
	}
	if _, err := Train(fx.enc, nil, 2, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := Train(fx.enc, fx.samples, 0, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("n=0 accepted")
	}
	bad := []sampling.LabeledFrame{{Frame: fx.samples[0].Frame, ModelIdx: 5}}
	if _, err := Train(fx.enc, bad, 2, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestFromParts(t *testing.T) {
	fx := buildFixture(t, 210)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 5, RNG: xrand.New(211)})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromParts(fx.enc, m.Head)
	if err != nil {
		t.Fatal(err)
	}
	f := fx.world.GenerateFrame(fx.sceneA, 1, xrand.New(212))
	a, b := m.Scores(f), rebuilt.Scores(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FromParts model differs")
		}
	}
	if _, err := FromParts(nil, m.Head); err == nil {
		t.Fatal("nil encoder accepted")
	}
	if _, err := FromParts(fx.enc, nil); err == nil {
		t.Fatal("nil head accepted")
	}
}

func TestFLOPsAndWeights(t *testing.T) {
	fx := buildFixture(t, 213)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 3, RNG: xrand.New(214)})
	if err != nil {
		t.Fatal(err)
	}
	if m.FLOPs() != fx.enc.Weights.FLOPs()+m.Head.FLOPs() {
		t.Fatal("FLOPs composition wrong")
	}
	if m.WeightBytes() <= m.Head.WeightBytes() {
		t.Fatal("weights should include encoder")
	}
	// The decision stack must be far cheaper than a deep detector per
	// frame (Table IV shape: M_scene+M_decision ≪ YOLOv3).
	deep := detect.NewDetector("deep", detect.Deep, 8, xrand.New(215))
	if m.FLOPs() >= deep.FrameFLOPs(64) {
		t.Fatal("decision stack should be cheaper than deep detection")
	}
}

func TestConfusionOnOracle(t *testing.T) {
	fx := buildFixture(t, 216)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 40, RNG: xrand.New(217)})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(218)
	var frames []*synth.Frame
	for i := 0; i < 40; i++ {
		frames = append(frames, fx.world.GenerateFrame(fx.sceneA, 1.2, rng))
		frames = append(frames, fx.world.GenerateFrame(fx.sceneB, 1.2, rng))
	}
	cm := m.ConfusionOn(fx.models, frames)
	if cm.K != 2 {
		t.Fatalf("confusion size %d", cm.K)
	}
	if cm.Accuracy() < 0.6 {
		t.Fatalf("top-1 selection accuracy = %v", cm.Accuracy())
	}
}

func TestTrainWithEarlyStopping(t *testing.T) {
	fx := buildFixture(t, 219)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 80, Patience: 5, RNG: xrand.New(220)})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 2 {
		t.Fatalf("N = %d", m.N)
	}
}
