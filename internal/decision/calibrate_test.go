package decision

import (
	"math"
	"testing"

	"anole/internal/sampling"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

func TestCalibrateTemperaturePreservesRanking(t *testing.T) {
	fx := buildFixture(t, 300)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 30, RNG: xrand.New(301)})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(302)
	var probe []*tensor.Vector
	var before []int
	for i := 0; i < 30; i++ {
		f := fx.world.GenerateFrame(fx.sceneA, 1, rng)
		best, _ := m.Best(f)
		before = append(before, best)
		emb := m.Encoder.Embed(f)
		probe = append(probe, &emb)
	}
	temp, err := m.CalibrateTemperature(fx.samples)
	if err != nil {
		t.Fatal(err)
	}
	if temp <= 0 || math.IsNaN(temp) {
		t.Fatalf("temperature %v", temp)
	}
	for i, emb := range probe {
		scores := m.ScoresFromEmbedding(*emb)
		best := 0
		for j := 1; j < len(scores); j++ {
			if scores[j] > scores[best] {
				best = j
			}
		}
		if best != before[i] {
			t.Fatalf("calibration changed ranking at probe %d", i)
		}
	}
}

func TestCalibrateTemperatureImprovesNLL(t *testing.T) {
	fx := buildFixture(t, 303)
	// Overtrain so the head is confidently wrong off-distribution.
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 120, RNG: xrand.New(304)})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate on noisy labels: flip a fraction so temperature must
	// rise above 1 to fit the observed label noise.
	noisy := append([]sampling.LabeledFrame(nil), fx.samples...)
	rng := xrand.New(305)
	for i := range noisy {
		if rng.Bool(0.3) {
			noisy[i].ModelIdx = 1 - noisy[i].ModelIdx
		}
	}
	nll := func() float64 {
		var total float64
		for _, s := range noisy {
			scores := m.Scores(s.Frame)
			p := scores[s.ModelIdx]
			if p < 1e-12 {
				p = 1e-12
			}
			total -= math.Log(p)
		}
		return total / float64(len(noisy))
	}
	before := nll()
	temp, err := m.CalibrateTemperature(noisy)
	if err != nil {
		t.Fatal(err)
	}
	after := nll()
	if after > before+1e-9 {
		t.Fatalf("calibration worsened NLL: %v -> %v (T=%v)", before, after, temp)
	}
	if temp <= 1 {
		t.Fatalf("noisy labels should push temperature above 1, got %v", temp)
	}
}

func TestCalibrateTemperatureValidation(t *testing.T) {
	fx := buildFixture(t, 306)
	m, err := Train(fx.enc, fx.samples, 2, Config{Epochs: 5, RNG: xrand.New(307)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CalibrateTemperature(nil); err == nil {
		t.Fatal("empty calibration set accepted")
	}
	bad := []sampling.LabeledFrame{{Frame: fx.samples[0].Frame, ModelIdx: 9}}
	if _, err := m.CalibrateTemperature(bad); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}
