package decision

import (
	"fmt"
	"math"

	"anole/internal/sampling"
	"anole/internal/tensor"
)

// Temperature scaling: softmax heads are systematically overconfident,
// which matters because the paper uses the suitability probability as a
// "does a fitting model even exist" signal (§IV-C). CalibrateTemperature
// finds the temperature T minimizing the negative log-likelihood of
// softmax(logits/T) on held-out samples, then folds 1/T into the head's
// final dense layer — mathematically identical to dividing logits at
// inference, so rankings (and therefore every accuracy result) are
// untouched while confidences become honest. Folding into the weights
// means the calibration survives serialization with no format change.
//
// CalibrateTemperature returns the temperature it applied.
func (m *Model) CalibrateTemperature(val []sampling.LabeledFrame) (float64, error) {
	if len(val) == 0 {
		return 0, fmt.Errorf("decision: no calibration samples")
	}
	// Pre-compute logits once; scaling them is cheap.
	type sample struct {
		logits tensor.Vector
		label  int
	}
	samples := make([]sample, 0, len(val))
	for _, s := range val {
		if s.ModelIdx < 0 || s.ModelIdx >= m.N {
			return 0, fmt.Errorf("decision: calibration label %d of %d", s.ModelIdx, m.N)
		}
		emb := m.Encoder.Embed(s.Frame)
		samples = append(samples, sample{logits: m.Head.Infer(nil, emb, nil), label: s.ModelIdx})
	}

	nll := func(temp float64) float64 {
		var total float64
		scaled := tensor.NewVector(m.N)
		for _, s := range samples {
			for i, v := range s.logits {
				scaled[i] = v / temp
			}
			total += tensor.LogSumExp(scaled) - scaled[s.label]
		}
		return total / float64(len(samples))
	}

	// Golden-section search over a generous temperature range.
	const (
		lo, hi = 0.25, 8.0
		phi    = 0.6180339887498949
		iters  = 60
	)
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := nll(c), nll(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = nll(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = nll(d)
		}
	}
	temp := (a + b) / 2
	if nll(1) <= nll(temp) {
		// Calibration would not improve likelihood; leave the head
		// untouched.
		return 1, nil
	}
	alpha := 1 / temp
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha == 0 {
		return 0, fmt.Errorf("decision: invalid scale %v", alpha)
	}
	// The head is immutable: folding the temperature produces a new
	// frozen program (copy-on-write on the final dense layer) and swaps
	// it in. Concurrent readers keep the program they already hold.
	scaled, err := m.Head.ScaleFinalDense(alpha)
	if err != nil {
		return 0, fmt.Errorf("decision: %w", err)
	}
	m.Head = scaled
	return temp, nil
}
