package decision

import (
	"fmt"
	"math"

	"anole/internal/nn"
	"anole/internal/sampling"
	"anole/internal/tensor"
)

// Temperature scaling: softmax heads are systematically overconfident,
// which matters because the paper uses the suitability probability as a
// "does a fitting model even exist" signal (§IV-C). CalibrateTemperature
// finds the temperature T minimizing the negative log-likelihood of
// softmax(logits/T) on held-out samples, then folds 1/T into the head's
// final dense layer — mathematically identical to dividing logits at
// inference, so rankings (and therefore every accuracy result) are
// untouched while confidences become honest. Folding into the weights
// means the calibration survives serialization with no format change.
//
// CalibrateTemperature returns the temperature it applied.
func (m *Model) CalibrateTemperature(val []sampling.LabeledFrame) (float64, error) {
	if len(val) == 0 {
		return 0, fmt.Errorf("decision: no calibration samples")
	}
	// Pre-compute logits once; scaling them is cheap.
	type sample struct {
		logits tensor.Vector
		label  int
	}
	samples := make([]sample, 0, len(val))
	for _, s := range val {
		if s.ModelIdx < 0 || s.ModelIdx >= m.N {
			return 0, fmt.Errorf("decision: calibration label %d of %d", s.ModelIdx, m.N)
		}
		emb := m.Encoder.Embed(s.Frame)
		samples = append(samples, sample{logits: m.Head.Forward(emb).Clone(), label: s.ModelIdx})
	}

	nll := func(temp float64) float64 {
		var total float64
		scaled := tensor.NewVector(m.N)
		for _, s := range samples {
			for i, v := range s.logits {
				scaled[i] = v / temp
			}
			total += tensor.LogSumExp(scaled) - scaled[s.label]
		}
		return total / float64(len(samples))
	}

	// Golden-section search over a generous temperature range.
	const (
		lo, hi = 0.25, 8.0
		phi    = 0.6180339887498949
		iters  = 60
	)
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := nll(c), nll(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = nll(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = nll(d)
		}
	}
	temp := (a + b) / 2
	if nll(1) <= nll(temp) {
		// Calibration would not improve likelihood; leave the head
		// untouched.
		return 1, nil
	}
	if err := scaleFinalDense(m.Head, 1/temp); err != nil {
		return 0, err
	}
	return temp, nil
}

// scaleFinalDense multiplies the network's last dense layer's weights and
// bias by alpha (equivalent to scaling the output logits).
func scaleFinalDense(net *nn.Network, alpha float64) error {
	params := net.Params()
	if len(params) < 2 {
		return fmt.Errorf("decision: head has no dense layer to scale")
	}
	// The final dense layer contributes the last two parameter groups
	// (weights, bias).
	for _, p := range params[len(params)-2:] {
		for i := range p.Value {
			p.Value[i] *= alpha
		}
	}
	if bad := math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha == 0; bad {
		return fmt.Errorf("decision: invalid scale %v", alpha)
	}
	return nil
}
