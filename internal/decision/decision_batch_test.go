package decision

import (
	"math"
	"testing"

	"anole/internal/nn"
	"anole/internal/scene"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// randomModel builds an untrained decision model via FromParts — batch
// equivalence is numerical, not semantic, so training would only slow
// the test down.
func randomModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	rng := xrand.New(seed)
	const featDim, embedDim, n = 18, 16, 5
	encNet := nn.NewMLP(nn.MLPConfig{InDim: featDim, Hidden: []int{32, embedDim}, OutDim: 3}, rng)
	enc, err := scene.FromParts(encNet.Freeze(), []int{0, 1, 2}, embedDim)
	if err != nil {
		t.Fatal(err)
	}
	head := nn.NewMLP(nn.MLPConfig{InDim: embedDim, Hidden: []int{16}, OutDim: n}, rng)
	m, err := FromParts(enc, head.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScoresBatchMatchesSequential pins the batched Model Selection
// Strategy bitwise against the per-frame path: batched head inference
// preserves each dot product's summation order and the in-place softmax
// is the same code, so every probability must be identical.
func TestScoresBatchMatchesSequential(t *testing.T) {
	m := randomModel(t, 51)
	rng := xrand.New(52)
	for _, batch := range []int{0, 1, 2, 9, 40} {
		embs := tensor.NewMatrix(batch, m.Encoder.EmbedDim())
		for i := range embs.Data {
			embs.Data[i] = rng.NormMS(0, 1)
		}
		got := m.ScoresBatchInto(nil, embs, nil)
		if got.Rows != batch || got.Cols != m.N {
			t.Fatalf("batch %d: output %dx%d, want %dx%d", batch, got.Rows, got.Cols, batch, m.N)
		}
		for r := 0; r < batch; r++ {
			want := m.ScoresInto(nil, embs.Row(r))
			sum := 0.0
			for j := range want {
				if got.At(r, j) != want[j] {
					t.Fatalf("batch %d row %d model %d: batched %v, sequential %v",
						batch, r, j, got.At(r, j), want[j])
				}
				sum += got.At(r, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d probabilities sum to %v", r, sum)
			}
		}
	}
}

// TestScoresBatchZeroAllocs pins the steady-state allocation contract of
// the batched selection step with held scratch and dst.
func TestScoresBatchZeroAllocs(t *testing.T) {
	m := randomModel(t, 53)
	rng := xrand.New(54)
	const batch = 32
	s := m.Head.AcquireBatchScratch()
	defer m.Head.ReleaseBatchScratch(s)
	embs := s.In(batch, m.Encoder.EmbedDim())
	for i := range embs.Data {
		embs.Data[i] = rng.NormMS(0, 1)
	}
	dst := s.Out(batch, m.N)
	m.ScoresBatchInto(dst, embs, s)
	allocs := testing.AllocsPerRun(100, func() {
		m.ScoresBatchInto(dst, embs, s)
	})
	if allocs != 0 {
		t.Fatalf("ScoresBatchInto with held scratch: %v allocs/op, want 0", allocs)
	}
}
