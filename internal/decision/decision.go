// Package decision implements the paper's decision model M_decision
// (§IV-C): a small MLP head on top of the frozen M_scene embedding,
// trained with cross-entropy on the adaptive-scene-sampling output to
// predict, for any frame, the suitability probability of each compressed
// model in the repertoire. Online, the Model Selection Strategy (§V-A)
// ranks models by these probabilities for every test sample.
package decision

import (
	"fmt"

	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Model is M_decision: the frozen scene encoder plus a frozen head
// producing one suitability logit per compressed model. Both parts are
// immutable nn.Weights programs, so one Model is safe to share across
// goroutines without cloning.
type Model struct {
	// Encoder is the frozen M_scene backbone.
	Encoder *scene.Encoder
	// Head maps scene embeddings to suitability logits.
	Head *nn.Weights
	// N is the repertoire size.
	N int
}

// Config controls decision-model training. Zero values select defaults.
type Config struct {
	// Hidden are the head's hidden widths (default [16]).
	Hidden []int
	// Epochs, BatchSize, LR configure the training run (defaults 40,
	// 32, 0.01).
	Epochs    int
	BatchSize int
	LR        float64
	// ValFraction carves a validation slice off the samples for early
	// stopping (default 0.2 when Patience > 0).
	ValFraction float64
	// Patience enables early stopping (default 0, disabled).
	Patience int
	// Workers shards gradient computation.
	Workers int
	// RNG is required for determinism.
	RNG *xrand.RNG
}

func (c *Config) setDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{16}
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.2
	}
	if c.RNG == nil {
		c.RNG = xrand.New(0)
	}
}

// Train fits M_decision on the ASS output: each sample is (frame, index
// of an accurate model). The encoder stays frozen — only embeddings flow
// into the head (paper §IV-C: freezing improves training efficiency and
// generalization).
func Train(enc *scene.Encoder, samples []sampling.LabeledFrame, n int, cfg Config) (*Model, error) {
	if enc == nil {
		return nil, fmt.Errorf("decision: nil encoder")
	}
	if n <= 0 {
		return nil, fmt.Errorf("decision: repertoire size %d", n)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("decision: no training samples")
	}
	cfg.setDefaults()

	// Multi-level clustering places every frame in one pool per level,
	// so the same frame may arrive labeled for several models. Keep the
	// best-F1 label per frame (M_decision predicts the best-fit model),
	// preserving first-appearance order so training is deterministic.
	bestByFrame := make(map[*synth.Frame]sampling.LabeledFrame, len(samples))
	var order []*synth.Frame
	for _, s := range samples {
		if s.ModelIdx < 0 || s.ModelIdx >= n {
			return nil, fmt.Errorf("decision: sample labels model %d of %d", s.ModelIdx, n)
		}
		prev, ok := bestByFrame[s.Frame]
		if !ok {
			order = append(order, s.Frame)
		}
		if !ok || s.F1 > prev.F1 {
			bestByFrame[s.Frame] = s
		}
	}
	all := make([]nn.Sample, 0, len(order))
	for _, f := range order {
		s := bestByFrame[f]
		y := tensor.NewVector(n)
		y[s.ModelIdx] = 1
		all = append(all, nn.Sample{X: enc.Embed(s.Frame), Y: y})
	}
	// Shuffle before the train/val cut so the split is not biased by
	// sampling order.
	cfg.RNG.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	train := all
	var val []nn.Sample
	if cfg.Patience > 0 && len(all) >= 10 {
		cut := len(all) - int(float64(len(all))*cfg.ValFraction)
		train, val = all[:cut], all[cut:]
	}

	head := nn.NewMLP(nn.MLPConfig{InDim: enc.EmbedDim(), Hidden: cfg.Hidden, OutDim: n}, cfg.RNG)
	if _, err := nn.Train(head, train, val, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Optimizer: nn.NewAdam(cfg.LR),
		RNG:       cfg.RNG,
		Patience:  cfg.Patience,
		Workers:   cfg.Workers,
	}); err != nil {
		return nil, fmt.Errorf("decision: train head: %w", err)
	}
	return &Model{Encoder: enc, Head: head.Freeze(), N: n}, nil
}

// FromParts reconstructs a Model from a deserialized head (device-side
// bundle loading).
func FromParts(enc *scene.Encoder, head *nn.Weights) (*Model, error) {
	if enc == nil || head == nil {
		return nil, fmt.Errorf("decision: nil part")
	}
	if head.InDim() != enc.EmbedDim() {
		return nil, fmt.Errorf("decision: head input %d, embedding %d", head.InDim(), enc.EmbedDim())
	}
	return &Model{Encoder: enc, Head: head, N: head.OutDim()}, nil
}

// Scores returns the model-allocation vector v^x for frame f: softmax
// suitability probabilities over the repertoire. The returned slice is
// freshly allocated.
func (m *Model) Scores(f *synth.Frame) []float64 {
	emb := m.Encoder.EmbedFeature(synth.FrameFeature(f))
	return m.ScoresFromEmbedding(emb)
}

// ScoresFromEmbedding computes suitability probabilities from a
// precomputed scene embedding.
func (m *Model) ScoresFromEmbedding(emb tensor.Vector) []float64 {
	return m.ScoresInto(nil, emb)
}

// ScoresInto computes suitability probabilities from a precomputed scene
// embedding into dst (allocating only when dst is nil or mis-sized) and
// returns dst. With a reused dst this is the runtime's allocation-free
// Model Selection Strategy step: logits land in dst, then softmax runs
// in place.
func (m *Model) ScoresInto(dst []float64, emb tensor.Vector) []float64 {
	logits := m.Head.Infer(tensor.Vector(dst), emb, nil)
	return tensor.Softmax(logits, logits)
}

// ScoresBatchInto computes suitability probabilities for a batch of
// precomputed scene embeddings (one per row of embs) into dst (one
// probability vector per row, allocating only when dst is nil or
// mis-shaped) and returns dst. s supplies the head's intermediate
// activation matrices; pass nil to borrow one from its pool. The head
// runs as one matrix product per dense layer and softmax runs in place
// per row, so each row is bit-identical to ScoresInto on that embedding.
func (m *Model) ScoresBatchInto(dst, embs *tensor.Matrix, s *nn.BatchScratch) *tensor.Matrix {
	dst = m.Head.InferBatch(dst, embs, s)
	for r := 0; r < dst.Rows; r++ {
		row := dst.Row(r)
		tensor.Softmax(row, row)
	}
	return dst
}

// Rank returns model indices ordered by decreasing suitability for f.
func (m *Model) Rank(f *synth.Frame) []int {
	return stats.RankDescending(m.Scores(f))
}

// Best returns the top-ranked model index and its probability, the
// confidence signal the paper uses to detect "no suitable model exists".
func (m *Model) Best(f *synth.Frame) (int, float64) {
	scores := m.Scores(f)
	best := stats.ArgmaxFloat(scores)
	return best, scores[best]
}

// FLOPs returns the end-to-end per-frame decision cost: scene-encoder
// embedding plus head (the "M_scene + M_decision" row of Table IV).
func (m *Model) FLOPs() int64 {
	return m.Encoder.Weights.FLOPs() + m.Head.FLOPs()
}

// WeightBytes returns the combined serialized size.
func (m *Model) WeightBytes() int64 {
	return m.Encoder.Weights.WeightBytes() + m.Head.WeightBytes()
}

// ConfusionOn evaluates top-1 model selection against the oracle best
// model (highest per-frame F1, ties to the lower index) over frames,
// producing the Fig. 6(b) confusion matrix. Frames where every model
// scores zero F1 are skipped, since no selection is "right" there.
func (m *Model) ConfusionOn(models []*detect.Detector, frames []*synth.Frame) *stats.ConfusionMatrix {
	cm := stats.NewConfusionMatrix(m.N)
	for _, f := range frames {
		bestIdx, bestF1 := -1, 0.0
		for i, det := range models {
			if f1 := det.EvaluateFrame(f).F1; f1 > bestF1 {
				bestIdx, bestF1 = i, f1
			}
		}
		if bestIdx < 0 {
			continue
		}
		pred, _ := m.Best(f)
		cm.Observe(bestIdx, pred)
	}
	return cm
}
