package repo

import (
	"bytes"
	"io"
	"testing"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// tinyBundle hand-assembles the smallest valid bundle — untrained
// random networks, two models, one centroid — so the fuzz seed corpus
// carries real structure without paying for profiling.
func tinyBundle(tb testing.TB) *core.Bundle {
	tb.Helper()
	const featDim = 3
	rng := xrand.NewLabeled(11, "fuzz-bundle")
	inDim := synth.FrameFeatureDim(featDim)
	const embedDim = 4
	encNet := nn.NewMLP(nn.MLPConfig{InDim: inDim, Hidden: []int{6, embedDim}, OutDim: 2}, rng)
	enc, err := scene.FromParts(encNet.Freeze(), []int{0, 3}, embedDim)
	if err != nil {
		tb.Fatal(err)
	}
	const models = 2
	head := nn.NewMLP(nn.MLPConfig{InDim: embedDim, Hidden: []int{5}, OutDim: models}, rng)
	dec, err := decision.FromParts(enc, head.Freeze())
	if err != nil {
		tb.Fatal(err)
	}
	detectors := make([]*detect.Detector, models)
	infos := make([]core.ModelInfo, models)
	for i := range detectors {
		detectors[i] = detect.NewDetector(
			[]string{"M_0", "M_1"}[i], detect.Compressed, featDim, rng)
		infos[i] = core.ModelInfo{Name: detectors[i].Name, Level: i, Cluster: i, TrainScenes: []int{i}, ValF1: 0.5}
	}
	b := &core.Bundle{
		Encoder:      enc,
		Decision:     dec,
		Detectors:    detectors,
		Infos:        infos,
		FeatDim:      featDim,
		Centroids:    nil,
		NoveltyScale: 0,
	}
	if err := b.Validate(); err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzReadBundle pushes corrupted, truncated and mutated bytes through
// the binary bundle decoder: it must return an error or a valid bundle,
// and must never panic — the device-side download path parses exactly
// these bytes off the network.
func FuzzReadBundle(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, tinyBundle(f)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                         // truncated mid-structure
	f.Add(valid[:5])                                    // header only
	f.Add([]byte("ANLB"))                               // magic alone
	f.Add([]byte("NOPE garbage"))                       // wrong magic
	f.Add(bytes.Repeat([]byte{0}, 64))                  // zeros
	f.Add(append([]byte(nil), valid...)[:len(valid)-4]) // checksum missing
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x55 // corrupt interior byte
	f.Add(flipped)
	biggified := append([]byte(nil), valid...)
	// Blast the length-prefixed region after the header with 0xff to
	// exercise the implausible-size guards.
	for i := 10; i < 26 && i < len(biggified); i++ {
		biggified[i] = 0xff
	}
	f.Add(biggified)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must be internally consistent
		// and re-serializable.
		if err := b.Validate(); err != nil {
			t.Fatalf("decoded bundle fails validation: %v", err)
		}
		if err := WriteBundle(io.Discard, b); err != nil {
			t.Fatalf("decoded bundle does not re-serialize: %v", err)
		}
	})
}
