// Package repo implements the cloud-side model repository: a binary
// bundle format carrying M_scene, M_decision and the compressed model
// repertoire, plus an HTTP server and device-side client so mobile
// devices can download everything before going online (the paper's
// offline cloud↔device communication, Fig. 2).
package repo

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/scene"
	"anole/internal/tensor"
)

// Bundle file format (all little-endian):
//
//	magic    [4]byte "ANLB"
//	version  uint16 (2)
//	featDim  uint32
//	embedDim uint32
//	scenes   uint32, then scenes × int32  (encoder ClassToScene)
//	encoder  network blob (uint64 length + nn wire format)
//	decision network blob
//	novelty  scale float64, centroids uint32, then centroids × embedDim
//	         float64 (the OOD calibration; zero centroids = uncalibrated)
//	models   uint16, then per model:
//	  name      string (uint16 length + bytes)
//	  archName  string
//	  level     uint16
//	  cluster   int16 (-1 marks continual-expansion models)
//	  valF1     float64
//	  nScenes   uint32, then nScenes × int32
//	  network blob
//	crc32    uint32 (IEEE, over everything after the magic)
const (
	bundleMagic   = "ANLB"
	bundleVersion = 2
	maxModels     = 1 << 12
	maxScenes     = 1 << 16
	maxCentroids  = 1 << 16
	// maxDim bounds featDim/embedDim read from untrusted bytes, so a
	// corrupted header cannot demand a gigantic centroid allocation
	// before the checksum is ever verified.
	maxDim = 1 << 16
)

// WriteBundle serializes the bundle to w.
func WriteBundle(w io.Writer, b *core.Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if _, err := w.Write([]byte(bundleMagic)); err != nil {
		return fmt.Errorf("repo: write magic: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if err := writeBin(mw,
		uint16(bundleVersion),
		uint32(b.FeatDim),
		uint32(b.Encoder.EmbedDim()),
	); err != nil {
		return fmt.Errorf("repo: write header: %w", err)
	}
	if err := writeInts(mw, b.Encoder.ClassToScene); err != nil {
		return fmt.Errorf("repo: write scene map: %w", err)
	}
	if err := writeNetBlob(mw, b.Encoder.Weights); err != nil {
		return fmt.Errorf("repo: write encoder: %w", err)
	}
	if err := writeNetBlob(mw, b.Decision.Head); err != nil {
		return fmt.Errorf("repo: write decision head: %w", err)
	}
	if err := writeBin(mw, b.NoveltyScale, uint32(len(b.Centroids))); err != nil {
		return fmt.Errorf("repo: write novelty header: %w", err)
	}
	for i, c := range b.Centroids {
		if len(c) != b.Encoder.EmbedDim() {
			return fmt.Errorf("repo: centroid %d has dim %d, embed dim %d", i, len(c), b.Encoder.EmbedDim())
		}
		if err := writeFloats(mw, c); err != nil {
			return fmt.Errorf("repo: write centroid %d: %w", i, err)
		}
	}
	if err := writeBin(mw, uint16(len(b.Detectors))); err != nil {
		return fmt.Errorf("repo: write model count: %w", err)
	}
	for i, det := range b.Detectors {
		info := b.Infos[i]
		if err := writeString(mw, det.Name); err != nil {
			return fmt.Errorf("repo: model %d name: %w", i, err)
		}
		if err := writeString(mw, det.Arch.Name); err != nil {
			return fmt.Errorf("repo: model %d arch: %w", i, err)
		}
		if err := writeBin(mw, uint16(info.Level), int16(info.Cluster), info.ValF1); err != nil {
			return fmt.Errorf("repo: model %d meta: %w", i, err)
		}
		if err := writeInts(mw, info.TrainScenes); err != nil {
			return fmt.Errorf("repo: model %d scenes: %w", i, err)
		}
		if err := writeNetBlob(mw, det.Weights()); err != nil {
			return fmt.Errorf("repo: model %d net: %w", i, err)
		}
	}
	if err := writeBin(w, crc.Sum32()); err != nil {
		return fmt.Errorf("repo: write checksum: %w", err)
	}
	return nil
}

// ReadBundle deserializes a bundle written by WriteBundle, verifying the
// checksum and reconstructing the encoder, decision model and detectors.
func ReadBundle(r io.Reader) (*core.Bundle, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("repo: read magic: %w", err)
	}
	if string(magic) != bundleMagic {
		return nil, fmt.Errorf("repo: bad magic %q", magic)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	var (
		version           uint16
		featDim, embedDim uint32
	)
	if err := readBin(tr, &version, &featDim, &embedDim); err != nil {
		return nil, fmt.Errorf("repo: read header: %w", err)
	}
	if version != bundleVersion {
		return nil, fmt.Errorf("repo: unsupported version %d", version)
	}
	if featDim == 0 || featDim > maxDim {
		return nil, fmt.Errorf("repo: implausible feature dim %d", featDim)
	}
	if embedDim == 0 || embedDim > maxDim {
		return nil, fmt.Errorf("repo: implausible embedding dim %d", embedDim)
	}
	classToScene, err := readInts(tr)
	if err != nil {
		return nil, fmt.Errorf("repo: read scene map: %w", err)
	}
	encNet, err := readNetBlob(tr)
	if err != nil {
		return nil, fmt.Errorf("repo: read encoder: %w", err)
	}
	headNet, err := readNetBlob(tr)
	if err != nil {
		return nil, fmt.Errorf("repo: read decision head: %w", err)
	}
	var noveltyScale float64
	var centroidCount uint32
	if err := readBin(tr, &noveltyScale, &centroidCount); err != nil {
		return nil, fmt.Errorf("repo: read novelty header: %w", err)
	}
	if centroidCount > maxCentroids {
		return nil, fmt.Errorf("repo: implausible centroid count %d", centroidCount)
	}
	if total := uint64(centroidCount) * uint64(embedDim); total > 1<<22 {
		return nil, fmt.Errorf("repo: implausible centroid payload (%d floats)", total)
	}
	centroids := make([]tensor.Vector, centroidCount)
	for i := range centroids {
		c := tensor.NewVector(int(embedDim))
		if err := readFloats(tr, c); err != nil {
			return nil, fmt.Errorf("repo: read centroid %d: %w", i, err)
		}
		centroids[i] = c
	}
	var modelCount uint16
	if err := readBin(tr, &modelCount); err != nil {
		return nil, fmt.Errorf("repo: read model count: %w", err)
	}
	if modelCount == 0 || int(modelCount) > maxModels {
		return nil, fmt.Errorf("repo: implausible model count %d", modelCount)
	}

	enc, err := scene.FromParts(encNet, classToScene, int(embedDim))
	if err != nil {
		return nil, fmt.Errorf("repo: rebuild encoder: %w", err)
	}
	dec, err := decision.FromParts(enc, headNet)
	if err != nil {
		return nil, fmt.Errorf("repo: rebuild decision model: %w", err)
	}

	detectors := make([]*detect.Detector, modelCount)
	infos := make([]core.ModelInfo, modelCount)
	for i := 0; i < int(modelCount); i++ {
		name, err := readString(tr)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d name: %w", i, err)
		}
		archName, err := readString(tr)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d arch: %w", i, err)
		}
		var level uint16
		var cluster int16
		var valF1 float64
		if err := readBin(tr, &level, &cluster, &valF1); err != nil {
			return nil, fmt.Errorf("repo: model %d meta: %w", i, err)
		}
		scenes, err := readInts(tr)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d scenes: %w", i, err)
		}
		w, err := readNetBlob(tr)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d net: %w", i, err)
		}
		arch, err := ArchByName(archName)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d: %w", i, err)
		}
		det, err := detect.FromWeights(name, arch, int(featDim), w)
		if err != nil {
			return nil, fmt.Errorf("repo: model %d: %w", i, err)
		}
		detectors[i] = det
		infos[i] = core.ModelInfo{
			Name:        name,
			Level:       int(level),
			Cluster:     int(cluster),
			TrainScenes: scenes,
			ValF1:       valF1,
		}
	}

	wantCRC := crc.Sum32()
	var gotCRC uint32
	if err := readBin(br, &gotCRC); err != nil {
		return nil, fmt.Errorf("repo: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("repo: checksum mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}

	bundle := &core.Bundle{
		Encoder:      enc,
		Decision:     dec,
		Detectors:    detectors,
		Infos:        infos,
		FeatDim:      int(featDim),
		Centroids:    centroids,
		NoveltyScale: noveltyScale,
	}
	if err := bundle.Validate(); err != nil {
		return nil, err
	}
	return bundle, nil
}

// SaveFile writes the bundle to path atomically (write to a temp file in
// the same directory, then rename).
func SaveFile(path string, b *core.Bundle) error {
	tmp, err := os.CreateTemp(dirOf(path), ".bundle-*")
	if err != nil {
		return fmt.Errorf("repo: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteBundle(tmp, b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("repo: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("repo: %w", err)
	}
	return nil
}

// LoadFile reads a bundle from disk.
func LoadFile(path string) (*core.Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	defer f.Close()
	return ReadBundle(f)
}

// ArchByName resolves a serialized architecture name.
func ArchByName(name string) (detect.Arch, error) {
	switch name {
	case detect.Deep.Name:
		return detect.Deep, nil
	case detect.Compressed.Name:
		return detect.Compressed, nil
	default:
		return detect.Arch{}, fmt.Errorf("repo: unknown architecture %q", name)
	}
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

func writeBin(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readBin(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("string too long (%d bytes)", len(s))
	}
	if err := writeBin(w, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := readBin(r, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeInts(w io.Writer, xs []int) error {
	if len(xs) > maxScenes {
		return fmt.Errorf("int list too long (%d)", len(xs))
	}
	if err := writeBin(w, uint32(len(xs))); err != nil {
		return err
	}
	for _, x := range xs {
		if x < math.MinInt32 || x > math.MaxInt32 {
			return fmt.Errorf("int %d out of int32 range", x)
		}
		if err := writeBin(w, int32(x)); err != nil {
			return err
		}
	}
	return nil
}

func readInts(r io.Reader) ([]int, error) {
	var n uint32
	if err := readBin(r, &n); err != nil {
		return nil, err
	}
	if n > maxScenes {
		return nil, fmt.Errorf("implausible int list length %d", n)
	}
	out := make([]int, n)
	for i := range out {
		var v int32
		if err := readBin(r, &v); err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func writeNetBlob(w io.Writer, weights *nn.Weights) error {
	var buf bytes.Buffer
	if _, err := weights.WriteTo(&buf); err != nil {
		return err
	}
	if err := writeBin(w, uint64(buf.Len())); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readNetBlob(r io.Reader) (*nn.Weights, error) {
	var n uint64
	if err := readBin(r, &n); err != nil {
		return nil, err
	}
	const maxBlob = 1 << 30
	if n == 0 || n > maxBlob {
		return nil, fmt.Errorf("implausible network blob size %d", n)
	}
	// Copy incrementally rather than pre-allocating n bytes: a
	// corrupted length field on a truncated stream then fails at EOF
	// without ever committing the full claimed allocation.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return nn.ReadWeights(&buf)
}
