package repo

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/core"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

func bundlesEquivalent(t *testing.T, a, b *core.Bundle, f *synth.Frame) {
	t.Helper()
	if a.NumModels() != b.NumModels() || a.FeatDim != b.FeatDim {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", a.NumModels(), a.FeatDim, b.NumModels(), b.FeatDim)
	}
	sa, sb := a.Decision.Scores(f), b.Decision.Scores(f)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("decision scores differ at %d: %v vs %v", i, sa[i], sb[i])
		}
	}
	for i := range a.Detectors {
		ma := a.Detectors[i].EvaluateFrame(f)
		mb := b.Detectors[i].EvaluateFrame(f)
		if ma != mb {
			t.Fatalf("detector %d differs: %+v vs %+v", i, ma, mb)
		}
		if a.Detectors[i].Name != b.Detectors[i].Name {
			t.Fatalf("detector %d name differs", i)
		}
		if a.Infos[i].Level != b.Infos[i].Level || a.Infos[i].ValF1 != b.Infos[i].ValF1 {
			t.Fatalf("info %d differs", i)
		}
		if len(a.Infos[i].TrainScenes) != len(b.Infos[i].TrainScenes) {
			t.Fatalf("info %d scenes differ", i)
		}
	}
}

func TestBundleRoundtrip(t *testing.T) {
	fx := testutil.Shared(t)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bundlesEquivalent(t, fx.Bundle, got, fx.Corpus.Frames(synth.Test)[0])
}

func TestBundleFileRoundtrip(t *testing.T) {
	fx := testutil.Shared(t)
	path := filepath.Join(t.TempDir(), "anole.bundle")
	if err := SaveFile(path, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bundlesEquivalent(t, fx.Bundle, got, fx.Corpus.Frames(synth.Test)[0])
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bundle")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadBundleBadMagic(t *testing.T) {
	if _, err := ReadBundle(strings.NewReader("XXXXjunkjunkjunk")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadBundleCorrupted(t *testing.T) {
	fx := testutil.Shared(t)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a metadata byte outside the inner network blobs' own
	// checks (near the end, before the outer CRC).
	data[len(data)-10] ^= 0xFF
	if _, err := ReadBundle(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestReadBundleTruncated(t *testing.T) {
	fx := testutil.Shared(t)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 8, 64, len(data) / 3, len(data) - 2} {
		if _, err := ReadBundle(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteBundleRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, &core.Bundle{}); err == nil {
		t.Fatal("invalid bundle accepted")
	}
}

func TestArchByName(t *testing.T) {
	if _, err := ArchByName("deep"); err != nil {
		t.Fatal(err)
	}
	if _, err := ArchByName("compressed"); err != nil {
		t.Fatal(err)
	}
	if _, err := ArchByName("mystery"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestServerAndClient(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	manifest, err := client.FetchManifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest.Models) != fx.Bundle.NumModels() {
		t.Fatalf("manifest models = %d", len(manifest.Models))
	}
	if manifest.BundleBytes <= 0 || manifest.FeatDim != fx.Bundle.FeatDim {
		t.Fatalf("manifest: %+v", manifest)
	}

	got, err := client.FetchBundle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bundlesEquivalent(t, fx.Bundle, got, fx.Corpus.Frames(synth.Test)[0])

	// Downloaded bundle drives a runtime end to end.
	rt, err := core.NewRuntime(got, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fx.Corpus.Frames(synth.Test)[:20] {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerRejectsNonGET(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/bundle", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/manifest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestClientBadServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	if _, err := client.FetchBundle(context.Background()); err == nil {
		t.Fatal("500 accepted")
	}
	if _, err := client.FetchManifest(context.Background()); err == nil {
		t.Fatal("500 accepted")
	}
}

func TestClientUnreachable(t *testing.T) {
	client := &Client{BaseURL: "http://127.0.0.1:1"}
	if _, err := client.FetchBundle(context.Background()); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestClientContextCancel(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client := &Client{BaseURL: ts.URL}
	if _, err := client.FetchBundle(ctx); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestBundleRoundtripPreservesNovelty(t *testing.T) {
	fx := testutil.Shared(t)
	if len(fx.Bundle.Centroids) == 0 || fx.Bundle.NoveltyScale <= 0 {
		t.Fatal("fixture bundle should carry novelty calibration")
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NoveltyScale != fx.Bundle.NoveltyScale {
		t.Fatalf("novelty scale %v vs %v", got.NoveltyScale, fx.Bundle.NoveltyScale)
	}
	if len(got.Centroids) != len(fx.Bundle.Centroids) {
		t.Fatalf("centroids %d vs %d", len(got.Centroids), len(fx.Bundle.Centroids))
	}
	f := fx.Corpus.Frames(synth.Test)[0]
	if got.Novelty(f) != fx.Bundle.Novelty(f) {
		t.Fatal("novelty scores differ after roundtrip")
	}
}

func TestBundleRoundtripNegativeCluster(t *testing.T) {
	// Continual-expansion models carry Cluster -1; the format must not
	// mangle it.
	fx := testutil.Shared(t)
	clone := *fx.Bundle
	clone.Infos = append([]core.ModelInfo(nil), fx.Bundle.Infos...)
	clone.Infos[0].Cluster = -1
	clone.Infos[0].Level = 0
	var buf bytes.Buffer
	if err := WriteBundle(&buf, &clone); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Infos[0].Cluster != -1 || got.Infos[0].Level != 0 {
		t.Fatalf("provenance mangled: %+v", got.Infos[0])
	}
}

// Property: arbitrary single-byte corruption anywhere in the bundle never
// panics — ReadBundle either errors or (for bytes the checksum cannot
// see, i.e. none) returns a valid bundle.
func TestReadBundleCorruptionProperty(t *testing.T) {
	fx := testutil.Shared(t)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := xrand.New(4321)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), pristine...)
		pos := rng.Intn(len(data))
		bit := byte(1) << rng.Intn(8)
		data[pos] ^= bit
		b, err := func() (b *core.Bundle, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corruption at byte %d: %v", pos, r)
				}
			}()
			return ReadBundle(bytes.NewReader(data))
		}()
		if err == nil {
			// The IEEE CRC covers every byte after the magic; only a
			// corrupted magic byte can "succeed"... and it cannot,
			// since the magic is checked. So success is a bug.
			t.Fatalf("corruption at byte %d (bit %02x) went undetected (bundle %v)", pos, bit, b != nil)
		}
	}
}

// Property: random truncation never panics and always errors.
func TestReadBundleTruncationProperty(t *testing.T) {
	fx := testutil.Shared(t)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := xrand.New(8765)
	for trial := 0; trial < 100; trial++ {
		cut := rng.Intn(len(pristine)-1) + 1
		if _, err := ReadBundle(bytes.NewReader(pristine[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
