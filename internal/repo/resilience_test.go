package repo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anole/internal/breaker"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// truncatingHandler serves the inner handler's responses but cuts the
// first `cut` bodies short mid-stream: the advertised Content-Length is
// honest, the bytes are not, so the client's read fails partway.
type truncatingHandler struct {
	inner http.Handler
	cut   atomic.Int64
	hits  atomic.Int64
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.hits.Add(1)
	if h.cut.Add(-1) < 0 {
		h.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.Code)
	// Write half the payload and return: the server closes the
	// connection with the response incomplete.
	w.Write(body[:len(body)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func TestClientRetriesMidStreamTruncation(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &truncatingHandler{inner: srv.Handler()}
	h.cut.Store(1)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Without retries the truncated body is a hard failure…
	noRetry := Client{BaseURL: ts.URL}
	if _, err := noRetry.FetchBundle(context.Background()); err == nil {
		t.Fatal("truncated fetch succeeded without retries")
	}

	// …with one retry the second, whole response recovers the fetch.
	h.cut.Store(1)
	h.hits.Store(0)
	c := Client{BaseURL: ts.URL, Retries: 2, RetryDelay: time.Millisecond}
	b, err := c.FetchBundle(context.Background())
	if err != nil {
		t.Fatalf("retry did not recover from mid-stream truncation: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.hits.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (truncated + whole)", got)
	}
}

func TestManifestCarriesContentDigests(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := Client{BaseURL: ts.URL}
	m, err := c.FetchManifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.BundleSHA256) != 64 {
		t.Fatalf("bundle digest %q, want 64 hex chars", m.BundleSHA256)
	}
	data, err := c.get(context.Background(), "/v1/bundle")
	if err != nil {
		t.Fatal(err)
	}
	if digestFor(data) != m.BundleSHA256 {
		t.Fatal("bundle digest does not match the served payload")
	}
	if len(m.Models) == 0 {
		t.Fatal("manifest lists no models")
	}
	for _, mm := range m.Models {
		if len(mm.SHA256) != 64 {
			t.Fatalf("model %q digest %q, want 64 hex chars", mm.Name, mm.SHA256)
		}
		payload, err := c.FetchModelVerified(context.Background(), mm.Name, mm.SHA256)
		if err != nil {
			t.Fatalf("verified fetch of %q against its manifest digest: %v", mm.Name, err)
		}
		if int64(len(payload)) == 0 {
			t.Fatalf("model %q payload empty", mm.Name)
		}
	}
	if got := c.Quarantined(); got != 0 {
		t.Fatalf("%d payloads quarantined on a clean path", got)
	}
}

// corruptingHandler flips one byte in the first `bad` response bodies,
// preserving length — only a content digest can catch it.
type corruptingHandler struct {
	inner http.Handler
	bad   atomic.Int64
}

func (h *corruptingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if h.bad.Add(-1) >= 0 && len(body) > 0 {
		body = bytes.Clone(body)
		body[len(body)/2] ^= 0x01
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.Code)
	w.Write(body)
}

func TestClientFetchModelVerifiedQuarantinesCorruption(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &corruptingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := Client{BaseURL: ts.URL, VerifyRetries: 2}
	m, err := c.FetchManifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	name, digest := m.Models[0].Name, m.Models[0].SHA256

	// One corrupted response: quarantined, refetched, served clean.
	h.bad.Store(1)
	data, err := c.FetchModelVerified(context.Background(), name, digest)
	if err != nil {
		t.Fatalf("refetch after quarantine failed: %v", err)
	}
	if digestFor(data) != digest {
		t.Fatal("returned payload does not match the digest")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("quarantined %d, want 1", got)
	}

	// Persistent corruption: every fetch is quarantined; corrupt bytes
	// are never returned.
	h.bad.Store(1 << 30)
	if _, err := c.FetchModelVerified(context.Background(), name, digest); err == nil {
		t.Fatal("persistently corrupted model fetch succeeded")
	} else if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("error %q does not mention quarantine", err)
	}
	if got := c.Quarantined(); got != 1+int64(c.verifyRetries())+1 {
		t.Fatalf("quarantined %d, want %d", got, 1+c.verifyRetries()+1)
	}
}

func TestClientBundleChecksumQuarantine(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &corruptingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// The bundle format's own checksum rejects the damaged payload; the
	// client quarantines and refetches.
	h.bad.Store(1)
	c := Client{BaseURL: ts.URL}
	b, err := c.FetchBundle(context.Background())
	if err != nil {
		t.Fatalf("refetch after bundle quarantine failed: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("quarantined %d, want 1", got)
	}
}

func TestClientBreakerFailsFastAndRecovers(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	var broken atomic.Bool
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if broken.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	var mu sync.Mutex
	var now time.Duration
	clock := func() time.Duration { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now += d; mu.Unlock() }

	br := breaker.New(breaker.Config{FailureThreshold: 2, Cooldown: time.Second, Now: clock})
	c := Client{BaseURL: ts.URL, Breaker: br}

	// Two failures open the breaker.
	broken.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := c.FetchManifest(context.Background()); err == nil {
			t.Fatal("fetch against a 503 server succeeded")
		}
	}
	if br.State() != breaker.Open {
		t.Fatalf("breaker %v after threshold failures, want open", br.State())
	}

	// While open, fetches fail fast without touching the server.
	before := hits.Load()
	if _, err := c.FetchManifest(context.Background()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker let a request through")
	}

	// After the cooldown the half-open probe goes through; its success
	// closes the breaker.
	broken.Store(false)
	advance(2 * time.Second)
	if _, err := c.FetchManifest(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if br.State() != breaker.Closed {
		t.Fatalf("breaker %v after probe success, want closed", br.State())
	}
}

func TestClientBreakerIgnoresCallerCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()

	br := breaker.New(breaker.Config{FailureThreshold: 1})
	c := Client{BaseURL: ts.URL, Breaker: br}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.FetchManifest(ctx); err == nil {
		t.Fatal("cancelled fetch succeeded")
	}
	// The caller gave up; that says nothing about the path, so the
	// breaker must not trip.
	if br.State() != breaker.Closed {
		t.Fatalf("breaker %v after caller cancellation, want closed", br.State())
	}
}

func TestClientAttemptTimeoutBoundsStalls(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &stallOnceHandler{inner: srv.Handler(), stall: time.Hour, stalled: make(map[string]bool)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// No overall HTTP timeout: only AttemptTimeout cuts the stall.
	c := Client{
		BaseURL:        ts.URL,
		HTTPClient:     &http.Client{},
		AttemptTimeout: 100 * time.Millisecond,
		Retries:        1,
		RetryDelay:     time.Millisecond,
	}
	start := time.Now()
	if _, err := c.FetchManifest(context.Background()); err != nil {
		t.Fatalf("retry after attempt timeout failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled attempt was not cut by AttemptTimeout (%v)", elapsed)
	}
}

func TestClientBackoffSchedule(t *testing.T) {
	c := Client{RetryDelay: 100 * time.Millisecond, BackoffFactor: 2, MaxRetryDelay: 500 * time.Millisecond}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for i, w := range want {
		if got := c.attemptDelay(i + 1); got != w {
			t.Fatalf("attempt %d delay %v, want %v", i+1, got, w)
		}
	}
}

func TestClientBackoffJitterIsSeededAndBounded(t *testing.T) {
	mk := func() *Client {
		return &Client{
			RetryDelay:    100 * time.Millisecond,
			BackoffFactor: 1,
			JitterFrac:    0.5,
			JitterSeed:    7,
		}
	}
	a, b := mk(), mk()
	varied := false
	for i := 1; i <= 50; i++ {
		da, db := a.attemptDelay(i), b.attemptDelay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", i, da, db)
		}
		if da < 50*time.Millisecond || da > 150*time.Millisecond {
			t.Fatalf("attempt %d delay %v outside ±50%% jitter band", i, da)
		}
		if da != 100*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved the delay")
	}
}

// TestClientMetricsOnSharedRegistry pins the anole_repo_* wiring: a
// caller-supplied registry receives the client's attempt/retry/
// quarantine counters, and their values track the observable fetch
// behavior (server hit counts, Quarantined()).
func TestClientMetricsOnSharedRegistry(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &truncatingHandler{inner: srv.Handler()}
	h.cut.Store(1)
	ts := httptest.NewServer(h)
	defer ts.Close()

	reg := telemetry.NewRegistry()
	c := Client{BaseURL: ts.URL, Retries: 2, RetryDelay: time.Millisecond, Metrics: reg}
	if _, err := c.FetchBundle(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := telemetry.Map(reg)
	if got := m["anole_repo_attempts_total"]; got != 2 {
		t.Fatalf("attempts counter %v, want 2 (truncated + whole)", got)
	}
	if got := m["anole_repo_retries_total"]; got != 1 {
		t.Fatalf("retries counter %v, want 1", got)
	}
	if got := m["anole_repo_attempt_failures_total"]; got != 1 {
		t.Fatalf("failures counter %v, want 1", got)
	}
	if got := m["anole_repo_quarantined_total"]; got != float64(c.Quarantined()) {
		t.Fatalf("quarantined counter %v, Quarantined() %v", got, c.Quarantined())
	}
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("scheme: %v", err)
	}
}
