package repo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"anole/internal/core"
)

// Manifest is the JSON summary a device can inspect before committing to
// a download.
type Manifest struct {
	Models      []ManifestModel `json:"models"`
	FeatDim     int             `json:"featDim"`
	EmbedDim    int             `json:"embedDim"`
	BundleBytes int             `json:"bundleBytes"`
}

// ManifestModel summarizes one repertoire model.
type ManifestModel struct {
	Name        string  `json:"name"`
	Arch        string  `json:"arch"`
	Level       int     `json:"level"`
	Cluster     int     `json:"cluster"`
	ValF1       float64 `json:"valF1"`
	WeightBytes int64   `json:"weightBytes"`
	SceneCount  int     `json:"sceneCount"`
}

// Server serves a profiled bundle to devices over HTTP:
//
//	GET /v1/manifest — JSON Manifest
//	GET /v1/bundle   — the binary bundle
//
// The bundle is serialized once at construction; Server is safe for
// concurrent use.
type Server struct {
	manifest Manifest
	blob     []byte
}

// NewServer prepares a server for the bundle.
func NewServer(b *core.Bundle) (*Server, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		return nil, err
	}
	m := Manifest{
		FeatDim:     b.FeatDim,
		EmbedDim:    b.Encoder.EmbedDim(),
		BundleBytes: buf.Len(),
	}
	for i, det := range b.Detectors {
		m.Models = append(m.Models, ManifestModel{
			Name:        det.Name,
			Arch:        det.Arch.Name,
			Level:       b.Infos[i].Level,
			Cluster:     b.Infos[i].Cluster,
			ValF1:       b.Infos[i].ValF1,
			WeightBytes: det.Net.WeightBytes(),
			SceneCount:  len(b.Infos[i].TrainScenes),
		})
	}
	return &Server{manifest: m, blob: buf.Bytes()}, nil
}

// Handler returns the HTTP handler serving the repository endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.manifest); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/v1/bundle", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(s.blob)))
		_, _ = w.Write(s.blob)
	})
	return mux
}

// Manifest returns the server's manifest.
func (s *Server) Manifest() Manifest { return s.manifest }

// Client downloads bundles from a repository server. The zero value uses
// http.DefaultClient with a 30 s timeout and no retries. Client is safe
// for concurrent use.
type Client struct {
	// BaseURL is the repository root, e.g. "http://cloud:8080".
	BaseURL string
	// HTTPClient overrides the transport when non-nil.
	HTTPClient *http.Client
	// Retries is the number of additional attempts after a failed
	// fetch (default 0). Transport errors — including client-side
	// timeouts against a stalled server — and 5xx statuses are
	// retried; other statuses are not. A cancelled context always
	// stops immediately.
	Retries int
	// RetryDelay spaces attempts (default 100ms when Retries > 0).
	RetryDelay time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// FetchManifest downloads and decodes the repository manifest.
func (c *Client) FetchManifest(ctx context.Context) (Manifest, error) {
	var m Manifest
	body, err := c.get(ctx, "/v1/manifest")
	if err != nil {
		return m, err
	}
	defer body.Close()
	if err := json.NewDecoder(body).Decode(&m); err != nil {
		return m, fmt.Errorf("repo: decode manifest: %w", err)
	}
	return m, nil
}

// FetchBundle downloads and deserializes the full bundle — the device's
// one-time offline download before inference begins.
func (c *Client) FetchBundle(ctx context.Context) (*core.Bundle, error) {
	body, err := c.get(ctx, "/v1/bundle")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return ReadBundle(body)
}

func (c *Client) get(ctx context.Context, path string) (io.ReadCloser, error) {
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("repo: fetch %s: %w", path, ctx.Err())
			case <-time.After(delay):
			}
		}
		body, retryable, err := c.fetchOnce(ctx, path)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// fetchOnce performs a single GET; retryable reports whether a failure
// is worth another attempt (transport errors and 5xx responses).
func (c *Client) fetchOnce(ctx context.Context, path string) (body io.ReadCloser, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, false, fmt.Errorf("repo: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("repo: fetch %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, resp.StatusCode >= 500, fmt.Errorf("repo: fetch %s: status %s", path, resp.Status)
	}
	return resp.Body, false, nil
}
