package repo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anole/internal/breaker"
	"anole/internal/core"
	"anole/internal/telemetry"
	"anole/internal/xrand"
)

// Manifest is the JSON summary a device can inspect before committing to
// a download.
type Manifest struct {
	Models      []ManifestModel `json:"models"`
	FeatDim     int             `json:"featDim"`
	EmbedDim    int             `json:"embedDim"`
	BundleBytes int             `json:"bundleBytes"`
	// BundleSHA256 is the hex SHA-256 of the bundle payload. Unlike the
	// transport-level ETag it travels inside the manifest, so a device
	// can verify downloaded content end-to-end — through any proxy or
	// cache — against what the repository intended to serve.
	BundleSHA256 string `json:"bundleSha256"`
	// Generation identifies the bundle this manifest describes.
	// Generations are minted monotonically by Publish; a rollback
	// re-activates an archived generation, so the ACTIVE generation can
	// step backwards while generation numbers themselves are never
	// reused. Devices treat a changed generation as "new content" and a
	// smaller-than-cached one as a deliberate rollback, not staleness.
	Generation uint64 `json:"generation"`
	// Lineage is the full publish/rollback history, oldest first — the
	// digest chain a device (or auditor) can walk to verify how the
	// active bundle came to be.
	Lineage []LineageEntry `json:"lineage,omitempty"`
}

// Lineage event kinds.
const (
	LineageEventPublish  = "publish"
	LineageEventRollback = "rollback"
)

// LineageEntry records one repository event: a generation published or
// an archived generation re-activated by a rollback.
type LineageEntry struct {
	// Generation is the generation made active by this event; Parent is
	// the generation that was active when it happened (0 for the seed
	// publish).
	Generation uint64 `json:"generation"`
	Parent     uint64 `json:"parent"`
	// Event is "publish" or "rollback".
	Event string `json:"event"`
	// BundleSHA256 is the hex digest of the generation's bundle payload —
	// the per-generation content anchor of the lineage chain.
	BundleSHA256 string `json:"bundleSha256"`
	// AddedModels names models that first appeared in this generation
	// (publishes only).
	AddedModels []string `json:"addedModels,omitempty"`
	// Note is the publisher's free-form annotation (e.g. the drift
	// signature the generation was trained for).
	Note string `json:"note,omitempty"`
	// Trace is the causal trace ID of the drift journey that produced
	// this event (the triggering drift report's ID), so one trace links
	// a device's report through retrain, publish and rollback history.
	Trace string `json:"trace,omitempty"`
}

// ManifestModel summarizes one repertoire model.
type ManifestModel struct {
	Name        string  `json:"name"`
	Arch        string  `json:"arch"`
	Level       int     `json:"level"`
	Cluster     int     `json:"cluster"`
	ValF1       float64 `json:"valF1"`
	WeightBytes int64   `json:"weightBytes"`
	SceneCount  int     `json:"sceneCount"`
	// SHA256 is the hex digest of this model's serialized network, for
	// client-side verification of per-model downloads (see
	// Client.FetchModelVerified).
	SHA256 string `json:"sha256"`
	// Version is the generation in which this model (by name) first
	// appeared. Seed models carry the seed generation; models appended
	// by continual adaptation carry the generation that published them.
	Version uint64 `json:"version"`
}

// Server serves a profiled bundle to devices over HTTP:
//
//	GET /v1/manifest              — JSON Manifest (active generation)
//	GET /v1/bundle                — the active binary bundle
//	GET /v1/model/{name}          — one model's serialized network
//	GET /v1/generation/{n}/manifest — an archived generation's manifest
//	GET /v1/generation/{n}/bundle   — an archived generation's bundle
//
// Every response carries a strong ETag (content checksum); a request
// whose If-None-Match matches is answered 304 Not Modified with no
// body, so devices revalidate a cached bundle or model for the cost of
// the headers. The manifest embeds the active generation and lineage,
// so its ETag changes on every publish AND every rollback — a device
// revalidating by If-None-Match observes both — while an archived
// generation's bundle ETag is permanent, because generation payloads
// are immutable once published.
//
// The server starts at the seed generation (NewServer) and mutates only
// through Publish and Rollback, which swap an immutable snapshot
// atomically; requests always see one consistent generation. Server is
// safe for concurrent use.
type Server struct {
	// mu serializes Publish/Rollback (writers); readers go through cur.
	mu      sync.Mutex
	cur     atomic.Pointer[generationState]
	history map[uint64]*generationState
	nextGen uint64
	lineage []LineageEntry
}

// generationState is one immutable serving snapshot.
type generationState struct {
	gen          uint64
	manifest     Manifest
	manifestJSON []byte
	manifestTag  string
	blob         []byte
	blobTag      string
	models       map[string]blobWithTag
	bundle       *core.Bundle
}

type blobWithTag struct {
	data []byte
	etag string
}

// digestFor returns the hex SHA-256 of a payload — the manifest's
// content digest.
func digestFor(data []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// etagFor returns the strong ETag of a payload: the quoted hex SHA-256
// (the same digest the manifest carries, in transport dress).
func etagFor(data []byte) string {
	return fmt.Sprintf("%q", digestFor(data))
}

// NewServer prepares a server for the bundle, which becomes the seed
// generation (1).
func NewServer(b *core.Bundle) (*Server, error) {
	s := &Server{history: make(map[uint64]*generationState)}
	if _, err := s.publishLocked(b, "seed", ""); err != nil {
		return nil, err
	}
	return s, nil
}

// buildGeneration serializes one bundle into an immutable serving
// snapshot. versions maps model name → generation of first appearance;
// names not in it are assigned gen (and reported in added).
func buildGeneration(b *core.Bundle, gen uint64, versions map[string]uint64, lineage []LineageEntry) (st *generationState, added []string, err error) {
	if err := b.Validate(); err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		return nil, nil, err
	}
	m := Manifest{
		FeatDim:      b.FeatDim,
		EmbedDim:     b.Encoder.EmbedDim(),
		BundleBytes:  buf.Len(),
		BundleSHA256: digestFor(buf.Bytes()),
		Generation:   gen,
		Lineage:      lineage,
	}
	models := make(map[string]blobWithTag, len(b.Detectors))
	for i, det := range b.Detectors {
		var mbuf bytes.Buffer
		if _, err := det.Weights().WriteTo(&mbuf); err != nil {
			return nil, nil, fmt.Errorf("repo: serialize model %q: %w", det.Name, err)
		}
		version, known := versions[det.Name]
		if !known {
			version = gen
			added = append(added, det.Name)
		}
		m.Models = append(m.Models, ManifestModel{
			Name:        det.Name,
			Arch:        det.Arch.Name,
			Level:       b.Infos[i].Level,
			Cluster:     b.Infos[i].Cluster,
			ValF1:       b.Infos[i].ValF1,
			WeightBytes: det.WeightBytes(),
			SceneCount:  len(b.Infos[i].TrainScenes),
			SHA256:      digestFor(mbuf.Bytes()),
			Version:     version,
		})
		models[det.Name] = blobWithTag{data: mbuf.Bytes(), etag: etagFor(mbuf.Bytes())}
	}
	mjson, err := json.Marshal(m)
	if err != nil {
		return nil, nil, fmt.Errorf("repo: encode manifest: %w", err)
	}
	return &generationState{
		gen:          gen,
		manifest:     m,
		manifestJSON: mjson,
		manifestTag:  etagFor(mjson),
		blob:         buf.Bytes(),
		blobTag:      etagFor(buf.Bytes()),
		models:       models,
		bundle:       b,
	}, added, nil
}

// Publish serializes b as the next generation, makes it the active one,
// and returns its generation number. Generation numbers increase
// monotonically across the server's lifetime — a rollback never frees
// one for reuse. The previous generation stays archived and fetchable
// under /v1/generation/, so devices mid-canary keep a stable reference
// and a rollback can restore it bit-for-bit.
func (s *Server) Publish(b *core.Bundle, note string) (uint64, error) {
	return s.PublishTraced(b, note, "")
}

// PublishTraced is Publish carrying the causal trace ID of the drift
// journey that produced the generation; the trace lands in the new
// lineage entry, linking the published bundle back to the device report
// that triggered its retrain.
func (s *Server) PublishTraced(b *core.Bundle, note, trace string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked(b, note, trace)
}

func (s *Server) publishLocked(b *core.Bundle, note, trace string) (uint64, error) {
	gen := s.nextGen + 1
	var parent uint64
	versions := make(map[string]uint64)
	if cur := s.cur.Load(); cur != nil {
		parent = cur.gen
		for _, m := range cur.manifest.Models {
			versions[m.Name] = m.Version
		}
	}
	// Two-pass build: the lineage entry carries the new bundle's digest
	// and added-model names, and the manifest embeds the lineage.
	st, added, err := buildGeneration(b, gen, versions, nil)
	if err != nil {
		return 0, err
	}
	entry := LineageEntry{
		Generation:   gen,
		Parent:       parent,
		Event:        LineageEventPublish,
		BundleSHA256: st.manifest.BundleSHA256,
		AddedModels:  added,
		Note:         note,
		Trace:        trace,
	}
	lineage := append(append([]LineageEntry(nil), s.lineage...), entry)
	st, _, err = buildGeneration(b, gen, versions, lineage)
	if err != nil {
		return 0, err
	}
	s.lineage = lineage
	s.nextGen = gen
	s.history[gen] = st
	s.cur.Store(st)
	return gen, nil
}

// Rollback re-activates an archived generation: the fleet serves
// generation `to`'s bundle again, bit-for-bit identical to when it was
// published (same payload, same ETag, same digest). The event is
// appended to the lineage — so the manifest's ETag changes and
// revalidating devices notice — but no new generation number is minted:
// monotonicity applies to publishes, and the active generation reading
// `to` again is precisely the signal that the newer generation was
// withdrawn.
func (s *Server) Rollback(to uint64, note string) error {
	return s.RollbackTraced(to, note, "")
}

// RollbackTraced is Rollback carrying the causal trace ID of the drift
// journey whose generation is being withdrawn, so the lineage records
// which adaptation attempt failed.
func (s *Server) RollbackTraced(to uint64, note, trace string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.history[to]
	if !ok {
		return fmt.Errorf("repo: rollback to unknown generation %d", to)
	}
	cur := s.cur.Load()
	if cur != nil && cur.gen == to {
		return fmt.Errorf("repo: rollback to generation %d, already active", to)
	}
	entry := LineageEntry{
		Generation:   to,
		Parent:       cur.gen,
		Event:        LineageEventRollback,
		BundleSHA256: st.manifest.BundleSHA256,
		Note:         note,
		Trace:        trace,
	}
	lineage := append(append([]LineageEntry(nil), s.lineage...), entry)
	m := st.manifest
	m.Lineage = lineage
	mjson, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repo: encode manifest: %w", err)
	}
	// The bundle payload, per-model blobs and their ETags are the
	// archived generation's, untouched; only the manifest (which embeds
	// the lineage) is re-baked.
	restored := &generationState{
		gen:          st.gen,
		manifest:     m,
		manifestJSON: mjson,
		manifestTag:  etagFor(mjson),
		blob:         st.blob,
		blobTag:      st.blobTag,
		models:       st.models,
		bundle:       st.bundle,
	}
	s.lineage = lineage
	s.history[to] = restored
	s.cur.Store(restored)
	return nil
}

// Generation returns the active generation number.
func (s *Server) Generation() uint64 { return s.cur.Load().gen }

// Lineage returns a copy of the full publish/rollback history, oldest
// first.
func (s *Server) Lineage() []LineageEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LineageEntry(nil), s.lineage...)
}

// Bundle returns the active generation's in-memory bundle.
func (s *Server) Bundle() *core.Bundle { return s.cur.Load().bundle }

// BundleBytes returns the active generation's serialized payload (not a
// copy; callers must not mutate it).
func (s *Server) BundleBytes() []byte { return s.cur.Load().blob }

// GenerationBundleBytes returns an archived generation's serialized
// payload (not a copy), or ok=false for a generation never published.
func (s *Server) GenerationBundleBytes(gen uint64) (data []byte, ok bool) {
	s.mu.Lock()
	st, ok := s.history[gen]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return st.blob, true
}

// serveBlob answers a GET with the payload and its ETag, or 304 when
// the request's If-None-Match already names this content.
func serveBlob(w http.ResponseWriter, r *http.Request, contentType, etag string, data []byte) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}

// etagMatches reports whether an If-None-Match header names the given
// ETag: "*" matches anything, otherwise any listed tag must equal it
// (weak-validator W/ prefixes are accepted — byte-identical content is
// trivially semantically equivalent).
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// Handler returns the HTTP handler serving the repository endpoints.
// Each request reads one atomic generation snapshot, so a Publish or
// Rollback mid-flight never mixes payloads and ETags.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		st := s.cur.Load()
		serveBlob(w, r, "application/json", st.manifestTag, st.manifestJSON)
	})
	mux.HandleFunc("/v1/bundle", func(w http.ResponseWriter, r *http.Request) {
		st := s.cur.Load()
		serveBlob(w, r, "application/octet-stream", st.blobTag, st.blob)
	})
	mux.HandleFunc("/v1/model/", func(w http.ResponseWriter, r *http.Request) {
		name, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/v1/model/"))
		if err != nil {
			http.Error(w, "bad model name", http.StatusBadRequest)
			return
		}
		mb, ok := s.cur.Load().models[name]
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		serveBlob(w, r, "application/octet-stream", mb.etag, mb.data)
	})
	mux.HandleFunc("/v1/generation/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/generation/")
		genStr, resource, ok := strings.Cut(rest, "/")
		if !ok {
			http.Error(w, "want /v1/generation/{n}/{manifest|bundle}", http.StatusBadRequest)
			return
		}
		gen, err := strconv.ParseUint(genStr, 10, 64)
		if err != nil {
			http.Error(w, "bad generation", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		st, found := s.history[gen]
		s.mu.Unlock()
		if !found {
			http.Error(w, "unknown generation", http.StatusNotFound)
			return
		}
		switch resource {
		case "manifest":
			serveBlob(w, r, "application/json", st.manifestTag, st.manifestJSON)
		case "bundle":
			serveBlob(w, r, "application/octet-stream", st.blobTag, st.blob)
		default:
			http.Error(w, "want manifest or bundle", http.StatusNotFound)
		}
	})
	return mux
}

// Manifest returns the active generation's manifest.
func (s *Server) Manifest() Manifest { return s.cur.Load().manifest }

// ErrBreakerOpen reports a fetch refused because the client's circuit
// breaker is open: recent attempts failed, so the client fails fast
// instead of stacking more load on a struggling path.
var ErrBreakerOpen = errors.New("repo: circuit breaker open")

// Client downloads bundles from a repository server. The zero value uses
// http.DefaultClient with a 30 s timeout and no retries. Client is safe
// for concurrent use, but must not be copied after first use.
type Client struct {
	// BaseURL is the repository root, e.g. "http://cloud:8080".
	BaseURL string
	// HTTPClient overrides the transport when non-nil.
	HTTPClient *http.Client
	// Retries is the number of additional attempts after a failed
	// fetch (default 0). Transport errors — including client-side
	// timeouts against a stalled server and bodies that fail or cut
	// short mid-stream — and 5xx statuses are retried; other statuses
	// are not. A cancelled context always stops immediately.
	Retries int
	// RetryDelay spaces attempts (default 100ms when Retries > 0); each
	// further attempt multiplies it by BackoffFactor (default 2 —
	// exponential backoff; 1 keeps the spacing constant), capped at
	// MaxRetryDelay (default 2s).
	RetryDelay    time.Duration
	BackoffFactor float64
	MaxRetryDelay time.Duration
	// JitterFrac spreads every delay by a uniform factor in [1-f, 1+f]
	// (0 = none, clamped to 1). Jitter decorrelates retry storms across
	// a fleet of devices; the stream is seeded from JitterSeed, so a
	// given client's schedule is reproducible.
	JitterFrac float64
	JitterSeed uint64
	// AttemptTimeout bounds each individual attempt, connect through
	// last body byte (0 = only HTTPClient's own timeout applies). With
	// it, a stalled server costs one attempt, not the whole fetch.
	AttemptTimeout time.Duration
	// Breaker, when non-nil, is consulted before every attempt and fed
	// every attempt's outcome. While open, fetches fail fast with an
	// error wrapping ErrBreakerOpen. Sharing one breaker between the
	// client and a prefetch scheduler makes demand failures pause
	// speculative traffic too.
	Breaker *breaker.Breaker
	// VerifyRetries is how many refetches a checksum-failed payload
	// earns (default 2). A payload whose digest or checksum does not
	// match is quarantined — counted and discarded, never returned.
	VerifyRetries int
	// Metrics, when non-nil, registers the client's counters
	// (anole_repo_*) on the given telemetry registry before first use,
	// so a shared registry exposes fetch behavior on /metrics. Nil
	// keeps them in a private registry.
	Metrics *telemetry.Registry

	jitterMu sync.Mutex
	jitter   *xrand.RNG

	// traceMu guards trace, the causal trace ID stamped on outgoing
	// requests as the X-Anole-Trace header (see SetTrace).
	traceMu sync.Mutex
	trace   string

	metOnce sync.Once
	met     *clientMetrics
}

// SetTrace sets the causal trace ID stamped on subsequent requests as
// the telemetry.TraceHeader header (empty clears it). The adaptation
// loop sets it around a canary fetch so the repository's span ring
// links the download to the drift journey that published the bundle.
func (c *Client) SetTrace(trace string) {
	c.traceMu.Lock()
	c.trace = trace
	c.traceMu.Unlock()
}

// currentTrace returns the trace ID to stamp on a request.
func (c *Client) currentTrace() string {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.trace
}

// clientMetrics are the repo.Client telemetry handles, bound lazily on
// first use so the zero-value Client keeps working.
type clientMetrics struct {
	attempts    *telemetry.Counter
	failures    *telemetry.Counter
	retries     *telemetry.Counter
	notModified *telemetry.Counter
	rejects     *telemetry.Counter
	quarantined *telemetry.Counter
}

// metrics returns the lazily bound handle set; Config.Metrics nil binds
// against a private registry so counters like Quarantined still count.
func (c *Client) metrics() *clientMetrics {
	c.metOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		c.met = &clientMetrics{
			attempts:    reg.Counter("anole_repo_attempts_total", "individual fetch attempts (retries included)"),
			failures:    reg.Counter("anole_repo_attempt_failures_total", "attempts that errored"),
			retries:     reg.Counter("anole_repo_retries_total", "attempts after the first for one fetch"),
			notModified: reg.Counter("anole_repo_not_modified_total", "conditional fetches answered 304"),
			rejects:     reg.Counter("anole_repo_breaker_rejects_total", "fetches failed fast on an open breaker"),
			quarantined: reg.Counter("anole_repo_quarantined_total", "payloads that failed verification and were discarded"),
		}
	})
	return c.met
}

// Quarantined reports how many fetched payloads failed verification and
// were discarded.
func (c *Client) Quarantined() int64 { return c.metrics().quarantined.Value() }

// verifyRetries returns the quarantine refetch budget.
func (c *Client) verifyRetries() int {
	if c.VerifyRetries > 0 {
		return c.VerifyRetries
	}
	return 2
}

// attemptDelay returns the backoff before retry `attempt` (1-based):
// RetryDelay · BackoffFactor^(attempt-1), capped at MaxRetryDelay, then
// jittered.
func (c *Client) attemptDelay(attempt int) time.Duration {
	base := c.RetryDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	factor := c.BackoffFactor
	if factor == 0 {
		factor = 2
	}
	if factor < 1 {
		factor = 1
	}
	d := float64(base) * math.Pow(factor, float64(attempt-1))
	limit := c.MaxRetryDelay
	if limit <= 0 {
		limit = 2 * time.Second
	}
	if d > float64(limit) {
		d = float64(limit)
	}
	if f := c.JitterFrac; f > 0 {
		if f > 1 {
			f = 1
		}
		c.jitterMu.Lock()
		if c.jitter == nil {
			c.jitter = xrand.NewLabeled(c.JitterSeed, "repo-client-jitter")
		}
		d *= 1 + c.jitter.Range(-f, f)
		c.jitterMu.Unlock()
	}
	return time.Duration(d)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// FetchManifest downloads and decodes the repository manifest.
func (c *Client) FetchManifest(ctx context.Context) (Manifest, error) {
	var m Manifest
	data, err := c.get(ctx, "/v1/manifest")
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("repo: decode manifest: %w", err)
	}
	return m, nil
}

// FetchBundle downloads and deserializes the full bundle — the device's
// one-time offline download before inference begins. A payload the
// bundle format's checksum rejects is quarantined and refetched up to
// VerifyRetries times; corrupt bytes are never returned.
func (c *Client) FetchBundle(ctx context.Context) (*core.Bundle, error) {
	var lastErr error
	for attempt := 0; attempt <= c.verifyRetries(); attempt++ {
		data, err := c.get(ctx, "/v1/bundle")
		if err != nil {
			return nil, err
		}
		b, err := ReadBundle(bytes.NewReader(data))
		if err == nil {
			return b, nil
		}
		c.metrics().quarantined.Inc()
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("repo: bundle quarantined after %d fetches: %w", c.verifyRetries()+1, lastErr)
}

// FetchBundleConditional revalidates a previously downloaded bundle:
// with the ETag of the cached copy the server answers 304 Not Modified
// and no payload travels (bundle nil, notModified true). On a miss (or
// an empty etag) it behaves like FetchBundle and returns the new ETag
// for the next revalidation.
func (c *Client) FetchBundleConditional(ctx context.Context, etag string) (b *core.Bundle, newETag string, notModified bool, err error) {
	data, newETag, notModified, err := c.getConditional(ctx, "/v1/bundle", etag)
	if err != nil || notModified {
		return nil, newETag, notModified, err
	}
	b, err = ReadBundle(bytes.NewReader(data))
	return b, newETag, false, err
}

// FetchGenerationBundle downloads and deserializes one archived
// generation's bundle — the rollout path, where a device mid-canary
// pins the exact generation its controller named rather than whatever
// is active when the fetch lands. Verification mirrors FetchBundle:
// checksum-rejected payloads are quarantined and refetched.
func (c *Client) FetchGenerationBundle(ctx context.Context, gen uint64) (*core.Bundle, error) {
	path := fmt.Sprintf("/v1/generation/%d/bundle", gen)
	var lastErr error
	for attempt := 0; attempt <= c.verifyRetries(); attempt++ {
		data, err := c.get(ctx, path)
		if err != nil {
			return nil, err
		}
		b, err := ReadBundle(bytes.NewReader(data))
		if err == nil {
			return b, nil
		}
		c.metrics().quarantined.Inc()
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("repo: generation %d bundle quarantined after %d fetches: %w", gen, c.verifyRetries()+1, lastErr)
}

// modelPath returns the per-model endpoint path for a model name.
func modelPath(name string) string { return "/v1/model/" + url.PathEscape(name) }

// FetchModel downloads one model's serialized network from the
// per-model endpoint, reporting the payload size and the wall-clock
// transfer time. Together with FetchModelNow it structurally satisfies
// the prefetch package's Fetcher interface, so a Client can back a
// prefetch scheduler directly: over a real HTTP link the background and
// demand paths cost the same wall-clock time.
func (c *Client) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	start := time.Now()
	data, err := c.get(ctx, modelPath(name))
	if err != nil {
		return 0, 0, err
	}
	return int64(len(data)), time.Since(start), nil
}

// FetchModelVerified downloads one model's bytes and verifies them
// against the manifest's hex SHA-256 digest. A mismatched payload is
// quarantined — counted and discarded, never returned — and refetched
// up to VerifyRetries times, so a bit-flip on the path costs a retry,
// not a poisoned cache. An empty digest skips verification.
func (c *Client) FetchModelVerified(ctx context.Context, name, sha256hex string) ([]byte, error) {
	for attempt := 0; attempt <= c.verifyRetries(); attempt++ {
		data, err := c.get(ctx, modelPath(name))
		if err != nil {
			return nil, err
		}
		if sha256hex == "" || digestFor(data) == sha256hex {
			return data, nil
		}
		c.metrics().quarantined.Inc()
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("repo: model %q quarantined after %d fetches: digest mismatch", name, c.verifyRetries()+1)
}

// FetchModelNow is the demand-path twin of FetchModel; for an HTTP
// client the two are the same wall-clock operation.
func (c *Client) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	return c.FetchModel(ctx, name)
}

// FetchModelConditional revalidates one cached model by ETag: a 304
// returns (nil, etag, true, nil) for the cost of the headers; otherwise
// the serialized network and its new ETag are returned.
func (c *Client) FetchModelConditional(ctx context.Context, name, etag string) (data []byte, newETag string, notModified bool, err error) {
	return c.getConditional(ctx, modelPath(name), etag)
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	data, _, _, err := c.getConditional(ctx, path, "")
	return data, err
}

// getConditional performs the retrying GET; a non-empty etag is sent as
// If-None-Match, and a 304 answer yields notModified with nil data. The
// whole body is buffered inside the retry loop, so failures while
// reading it mid-stream — a dropped connection, a truncated payload —
// are retried exactly like connect failures.
func (c *Client) getConditional(ctx context.Context, path, etag string) (data []byte, newETag string, notModified bool, err error) {
	met := c.metrics()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, "", false, fmt.Errorf("repo: fetch %s: %w", path, ctx.Err())
			case <-time.After(c.attemptDelay(attempt)):
			}
			met.retries.Inc()
		}
		if br := c.Breaker; br != nil && !br.Allow() {
			met.rejects.Inc()
			return nil, "", false, fmt.Errorf("repo: fetch %s: %w", path, ErrBreakerOpen)
		}
		met.attempts.Inc()
		data, newETag, notModified, retryable, err := c.fetchOnce(ctx, path, etag)
		c.recordOutcome(ctx, retryable, err)
		if err == nil {
			if notModified {
				met.notModified.Inc()
			}
			return data, newETag, notModified, nil
		}
		met.failures.Inc()
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return nil, "", false, lastErr
}

// recordOutcome feeds one attempt's result to the breaker (no-op
// without one). Only link-health signals move it: a clean response is a
// success; a retryable failure (transport error, per-attempt timeout,
// 5xx, damaged body) a failure — unless the caller's own context ended,
// which says nothing about the path. Non-retryable statuses mean the
// server answered and leave the breaker alone.
func (c *Client) recordOutcome(ctx context.Context, retryable bool, err error) {
	if c.Breaker == nil {
		return
	}
	switch {
	case err == nil:
		c.Breaker.Success()
	case retryable && ctx.Err() == nil:
		c.Breaker.Failure()
	}
}

// fetchOnce performs a single GET, reading the entire body; retryable
// reports whether a failure is worth another attempt (transport errors,
// 5xx responses, and bodies that fail or come up short mid-stream).
func (c *Client) fetchOnce(ctx context.Context, path, etag string) (data []byte, newETag string, notModified, retryable bool, err error) {
	if c.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, "", false, false, fmt.Errorf("repo: %w", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	if trace := c.currentTrace(); trace != "" {
		req.Header.Set(telemetry.TraceHeader, trace)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", false, true, fmt.Errorf("repo: fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	newETag = resp.Header.Get("ETag")
	if etag != "" && resp.StatusCode == http.StatusNotModified {
		return nil, newETag, true, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", false, resp.StatusCode >= 500, fmt.Errorf("repo: fetch %s: status %s", path, resp.Status)
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, true, fmt.Errorf("repo: read %s body: %w", path, err)
	}
	if resp.ContentLength >= 0 && int64(len(data)) != resp.ContentLength {
		return nil, "", false, true,
			fmt.Errorf("repo: fetch %s: truncated body (%d of %d bytes)", path, len(data), resp.ContentLength)
	}
	return data, newETag, false, false, nil
}
