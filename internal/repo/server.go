package repo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"anole/internal/core"
)

// Manifest is the JSON summary a device can inspect before committing to
// a download.
type Manifest struct {
	Models      []ManifestModel `json:"models"`
	FeatDim     int             `json:"featDim"`
	EmbedDim    int             `json:"embedDim"`
	BundleBytes int             `json:"bundleBytes"`
}

// ManifestModel summarizes one repertoire model.
type ManifestModel struct {
	Name        string  `json:"name"`
	Arch        string  `json:"arch"`
	Level       int     `json:"level"`
	Cluster     int     `json:"cluster"`
	ValF1       float64 `json:"valF1"`
	WeightBytes int64   `json:"weightBytes"`
	SceneCount  int     `json:"sceneCount"`
}

// Server serves a profiled bundle to devices over HTTP:
//
//	GET /v1/manifest     — JSON Manifest
//	GET /v1/bundle       — the binary bundle
//	GET /v1/model/{name} — one model's serialized network
//
// Every response carries a strong ETag (content checksum); a request
// whose If-None-Match matches is answered 304 Not Modified with no
// body, so devices revalidate a cached bundle or model for the cost of
// the headers. All payloads are serialized once at construction; Server
// is safe for concurrent use.
type Server struct {
	manifest     Manifest
	manifestJSON []byte
	manifestTag  string
	blob         []byte
	blobTag      string
	models       map[string]blobWithTag
}

type blobWithTag struct {
	data []byte
	etag string
}

// etagFor returns the strong ETag of a payload: the quoted hex SHA-256.
func etagFor(data []byte) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%x", sha256.Sum256(data)))
}

// NewServer prepares a server for the bundle.
func NewServer(b *core.Bundle) (*Server, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		return nil, err
	}
	m := Manifest{
		FeatDim:     b.FeatDim,
		EmbedDim:    b.Encoder.EmbedDim(),
		BundleBytes: buf.Len(),
	}
	models := make(map[string]blobWithTag, len(b.Detectors))
	for i, det := range b.Detectors {
		m.Models = append(m.Models, ManifestModel{
			Name:        det.Name,
			Arch:        det.Arch.Name,
			Level:       b.Infos[i].Level,
			Cluster:     b.Infos[i].Cluster,
			ValF1:       b.Infos[i].ValF1,
			WeightBytes: det.Net.WeightBytes(),
			SceneCount:  len(b.Infos[i].TrainScenes),
		})
		var mbuf bytes.Buffer
		if _, err := det.Net.WriteTo(&mbuf); err != nil {
			return nil, fmt.Errorf("repo: serialize model %q: %w", det.Name, err)
		}
		models[det.Name] = blobWithTag{data: mbuf.Bytes(), etag: etagFor(mbuf.Bytes())}
	}
	mjson, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("repo: encode manifest: %w", err)
	}
	return &Server{
		manifest:     m,
		manifestJSON: mjson,
		manifestTag:  etagFor(mjson),
		blob:         buf.Bytes(),
		blobTag:      etagFor(buf.Bytes()),
		models:       models,
	}, nil
}

// serveBlob answers a GET with the payload and its ETag, or 304 when
// the request's If-None-Match already names this content.
func serveBlob(w http.ResponseWriter, r *http.Request, contentType, etag string, data []byte) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}

// etagMatches reports whether an If-None-Match header names the given
// ETag: "*" matches anything, otherwise any listed tag must equal it
// (weak-validator W/ prefixes are accepted — byte-identical content is
// trivially semantically equivalent).
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// Handler returns the HTTP handler serving the repository endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		serveBlob(w, r, "application/json", s.manifestTag, s.manifestJSON)
	})
	mux.HandleFunc("/v1/bundle", func(w http.ResponseWriter, r *http.Request) {
		serveBlob(w, r, "application/octet-stream", s.blobTag, s.blob)
	})
	mux.HandleFunc("/v1/model/", func(w http.ResponseWriter, r *http.Request) {
		name, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/v1/model/"))
		if err != nil {
			http.Error(w, "bad model name", http.StatusBadRequest)
			return
		}
		mb, ok := s.models[name]
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		serveBlob(w, r, "application/octet-stream", mb.etag, mb.data)
	})
	return mux
}

// Manifest returns the server's manifest.
func (s *Server) Manifest() Manifest { return s.manifest }

// Client downloads bundles from a repository server. The zero value uses
// http.DefaultClient with a 30 s timeout and no retries. Client is safe
// for concurrent use.
type Client struct {
	// BaseURL is the repository root, e.g. "http://cloud:8080".
	BaseURL string
	// HTTPClient overrides the transport when non-nil.
	HTTPClient *http.Client
	// Retries is the number of additional attempts after a failed
	// fetch (default 0). Transport errors — including client-side
	// timeouts against a stalled server — and 5xx statuses are
	// retried; other statuses are not. A cancelled context always
	// stops immediately.
	Retries int
	// RetryDelay spaces attempts (default 100ms when Retries > 0).
	RetryDelay time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// FetchManifest downloads and decodes the repository manifest.
func (c *Client) FetchManifest(ctx context.Context) (Manifest, error) {
	var m Manifest
	body, err := c.get(ctx, "/v1/manifest")
	if err != nil {
		return m, err
	}
	defer body.Close()
	if err := json.NewDecoder(body).Decode(&m); err != nil {
		return m, fmt.Errorf("repo: decode manifest: %w", err)
	}
	return m, nil
}

// FetchBundle downloads and deserializes the full bundle — the device's
// one-time offline download before inference begins.
func (c *Client) FetchBundle(ctx context.Context) (*core.Bundle, error) {
	body, err := c.get(ctx, "/v1/bundle")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return ReadBundle(body)
}

// FetchBundleConditional revalidates a previously downloaded bundle:
// with the ETag of the cached copy the server answers 304 Not Modified
// and no payload travels (bundle nil, notModified true). On a miss (or
// an empty etag) it behaves like FetchBundle and returns the new ETag
// for the next revalidation.
func (c *Client) FetchBundleConditional(ctx context.Context, etag string) (b *core.Bundle, newETag string, notModified bool, err error) {
	body, newETag, notModified, err := c.getConditional(ctx, "/v1/bundle", etag)
	if err != nil || notModified {
		return nil, newETag, notModified, err
	}
	defer body.Close()
	b, err = ReadBundle(body)
	return b, newETag, false, err
}

// modelPath returns the per-model endpoint path for a model name.
func modelPath(name string) string { return "/v1/model/" + url.PathEscape(name) }

// FetchModel downloads one model's serialized network from the
// per-model endpoint, reporting the payload size and the wall-clock
// transfer time. Together with FetchModelNow it structurally satisfies
// the prefetch package's Fetcher interface, so a Client can back a
// prefetch scheduler directly: over a real HTTP link the background and
// demand paths cost the same wall-clock time.
func (c *Client) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	start := time.Now()
	body, err := c.get(ctx, modelPath(name))
	if err != nil {
		return 0, 0, err
	}
	defer body.Close()
	n, err := io.Copy(io.Discard, body)
	if err != nil {
		return 0, 0, fmt.Errorf("repo: read model %q: %w", name, err)
	}
	return n, time.Since(start), nil
}

// FetchModelNow is the demand-path twin of FetchModel; for an HTTP
// client the two are the same wall-clock operation.
func (c *Client) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	return c.FetchModel(ctx, name)
}

// FetchModelConditional revalidates one cached model by ETag: a 304
// returns (nil, etag, true, nil) for the cost of the headers; otherwise
// the serialized network and its new ETag are returned.
func (c *Client) FetchModelConditional(ctx context.Context, name, etag string) (data []byte, newETag string, notModified bool, err error) {
	body, newETag, notModified, err := c.getConditional(ctx, modelPath(name), etag)
	if err != nil || notModified {
		return nil, newETag, notModified, err
	}
	defer body.Close()
	data, err = io.ReadAll(body)
	if err != nil {
		return nil, newETag, false, fmt.Errorf("repo: read model %q: %w", name, err)
	}
	return data, newETag, false, nil
}

func (c *Client) get(ctx context.Context, path string) (io.ReadCloser, error) {
	body, _, _, err := c.getConditional(ctx, path, "")
	return body, err
}

// getConditional performs the retrying GET; a non-empty etag is sent as
// If-None-Match, and a 304 answer yields notModified with a nil body.
func (c *Client) getConditional(ctx context.Context, path, etag string) (io.ReadCloser, string, bool, error) {
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, "", false, fmt.Errorf("repo: fetch %s: %w", path, ctx.Err())
			case <-time.After(delay):
			}
		}
		body, newETag, notModified, retryable, err := c.fetchOnce(ctx, path, etag)
		if err == nil {
			return body, newETag, notModified, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return nil, "", false, lastErr
}

// fetchOnce performs a single GET; retryable reports whether a failure
// is worth another attempt (transport errors and 5xx responses).
func (c *Client) fetchOnce(ctx context.Context, path, etag string) (body io.ReadCloser, newETag string, notModified, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, "", false, false, fmt.Errorf("repo: %w", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", false, true, fmt.Errorf("repo: fetch %s: %w", path, err)
	}
	newETag = resp.Header.Get("ETag")
	if etag != "" && resp.StatusCode == http.StatusNotModified {
		resp.Body.Close()
		return nil, newETag, true, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, "", false, resp.StatusCode >= 500, fmt.Errorf("repo: fetch %s: status %s", path, resp.Status)
	}
	return resp.Body, newETag, false, false, nil
}
