package repo

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"anole/internal/testutil"
)

// TestServerPublishRollbackLineage walks the server through the rollout
// life cycle — seed, publish, rollback, publish again — and pins the
// versioning contract: generation numbers are minted monotonically and
// never reused, archived payloads stay fetchable and a rollback restores
// them bit-for-bit, and every event lands in the lineage with its
// parent, digest and note.
func TestServerPublishRollbackLineage(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Generation() != 1 {
		t.Fatalf("seed generation %d, want 1", srv.Generation())
	}
	gen1Blob := append([]byte(nil), srv.BundleBytes()...)

	gen2, err := srv.Publish(fx.Bundle, "retrained for night fog")
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 2 || srv.Generation() != 2 {
		t.Fatalf("publish minted %d (active %d), want 2", gen2, srv.Generation())
	}
	// The seed generation stays archived, bit-for-bit.
	archived, ok := srv.GenerationBundleBytes(1)
	if !ok || !bytes.Equal(archived, gen1Blob) {
		t.Fatalf("archived generation 1 diverged (ok %v, %d vs %d bytes)", ok, len(archived), len(gen1Blob))
	}
	if _, ok := srv.GenerationBundleBytes(99); ok {
		t.Fatal("never-published generation 99 served")
	}

	// Rollback guards: the active generation and unknown generations are
	// not rollback targets.
	if err := srv.Rollback(2, "x"); err == nil {
		t.Fatal("rollback to the active generation accepted")
	}
	if err := srv.Rollback(99, "x"); err == nil {
		t.Fatal("rollback to an unknown generation accepted")
	}

	if err := srv.Rollback(1, "canary regressed"); err != nil {
		t.Fatal(err)
	}
	if srv.Generation() != 1 {
		t.Fatalf("active generation %d after rollback, want 1", srv.Generation())
	}
	if !bytes.Equal(srv.BundleBytes(), gen1Blob) {
		t.Fatal("rollback did not restore the seed payload bit-for-bit")
	}

	// A rollback frees no numbers: the next publish mints 3, not 2.
	gen3, err := srv.Publish(fx.Bundle, "second attempt")
	if err != nil {
		t.Fatal(err)
	}
	if gen3 != 3 {
		t.Fatalf("post-rollback publish minted %d, want 3", gen3)
	}

	lin := srv.Lineage()
	wantEvents := []struct {
		gen, parent uint64
		event, note string
	}{
		{1, 0, LineageEventPublish, "seed"},
		{2, 1, LineageEventPublish, "retrained for night fog"},
		{1, 2, LineageEventRollback, "canary regressed"},
		{3, 1, LineageEventPublish, "second attempt"},
	}
	if len(lin) != len(wantEvents) {
		t.Fatalf("lineage has %d entries, want %d: %+v", len(lin), len(wantEvents), lin)
	}
	for i, want := range wantEvents {
		e := lin[i]
		if e.Generation != want.gen || e.Parent != want.parent || e.Event != want.event || e.Note != want.note {
			t.Fatalf("lineage[%d] = %+v, want %+v", i, e, want)
		}
		if e.BundleSHA256 != digestFor(gen1Blob) {
			t.Fatalf("lineage[%d] digest %q does not anchor the published payload", i, e.BundleSHA256)
		}
	}
	// The seed publish introduced every model; republishing the same
	// bundle introduced none.
	if len(lin[0].AddedModels) != fx.Bundle.NumModels() {
		t.Fatalf("seed publish added %d models, want %d", len(lin[0].AddedModels), fx.Bundle.NumModels())
	}
	if len(lin[1].AddedModels) != 0 || len(lin[3].AddedModels) != 0 {
		t.Fatalf("republish reported added models: %v / %v", lin[1].AddedModels, lin[3].AddedModels)
	}

	// The manifest mirrors the lineage, and model versions record first
	// appearance, not the current generation.
	m := srv.Manifest()
	if m.Generation != 3 || len(m.Lineage) != len(wantEvents) {
		t.Fatalf("manifest generation %d with %d lineage entries", m.Generation, len(m.Lineage))
	}
	for _, mm := range m.Models {
		if mm.Version != 1 {
			t.Fatalf("model %s version %d, want 1 (first appeared in the seed)", mm.Name, mm.Version)
		}
	}
}

// TestServerGenerationEndpoints drives the archived-generation HTTP
// surface: pinned fetches of old payloads, permanent ETags for immutable
// generations, a manifest ETag that moves on every publish AND rollback,
// and clean 400/404s for malformed or unknown paths.
func TestServerGenerationEndpoints(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("ETag"), body
	}

	_, seedManifestTag, _ := get("/v1/manifest")
	gen1Blob := append([]byte(nil), srv.BundleBytes()...)

	if _, err := srv.Publish(fx.Bundle, "gen two"); err != nil {
		t.Fatal(err)
	}

	status, gen1Tag, body := get("/v1/generation/1/bundle")
	if status != http.StatusOK || !bytes.Equal(body, gen1Blob) {
		t.Fatalf("archived bundle fetch: status %d, %d bytes", status, len(body))
	}
	if want := etagFor(gen1Blob); gen1Tag != want {
		t.Fatalf("archived bundle ETag %q, want %q", gen1Tag, want)
	}
	// Archived payloads are immutable, so their ETag revalidates forever.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/generation/1/bundle", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", gen1Tag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation of an archived generation: status %d, want 304", resp.StatusCode)
	}

	_, postPublishTag, _ := get("/v1/manifest")
	if postPublishTag == seedManifestTag {
		t.Fatal("manifest ETag did not move on publish")
	}
	if err := srv.Rollback(1, "withdrawn"); err != nil {
		t.Fatal(err)
	}
	// The rollback re-serves the old payload under a NEW manifest ETag —
	// that is how a revalidating device notices the withdrawal.
	_, postRollbackTag, _ := get("/v1/manifest")
	if postRollbackTag == postPublishTag || postRollbackTag == seedManifestTag {
		t.Fatalf("manifest ETag did not move on rollback: %q", postRollbackTag)
	}
	if status, _, body := get("/v1/bundle"); status != http.StatusOK || !bytes.Equal(body, gen1Blob) {
		t.Fatalf("active bundle after rollback: status %d, %d bytes", status, len(body))
	}

	for path, want := range map[string]int{
		"/v1/generation/abc/bundle": http.StatusBadRequest,
		"/v1/generation/1":          http.StatusBadRequest,
		"/v1/generation/9/bundle":   http.StatusNotFound,
		"/v1/generation/1/weird":    http.StatusNotFound,
	} {
		if status, _, _ := get(path); status != want {
			t.Errorf("GET %s: status %d, want %d", path, status, want)
		}
	}
}

// TestClientFetchGenerationBundle pins the device-side rollout path: a
// canary fetches the exact generation its controller named, even after
// the active generation has moved on.
func TestClientFetchGenerationBundle(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(fx.Bundle, "newer"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := Client{BaseURL: ts.URL}
	b, err := c.FetchGenerationBundle(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.NumModels() != fx.Bundle.NumModels() {
		t.Fatalf("archived bundle has %d models, want %d", b.NumModels(), fx.Bundle.NumModels())
	}
	if _, err := c.FetchGenerationBundle(context.Background(), 42); err == nil {
		t.Fatal("fetch of a never-published generation succeeded")
	}
}
