package repo

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anole/internal/synth"
	"anole/internal/testutil"
)

// TestServerConcurrentFetches hammers both endpoints from many
// goroutines at once: the server serializes the bundle exactly once at
// construction, so every concurrent download must decode to an
// equivalent bundle and an identical manifest. Run with -race.
func TestServerConcurrentFetches(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	probe := fx.Corpus.Frames(synth.Test)[0]
	// Score the probe once up front: the fixture bundle's networks cache
	// activations, so the shared Decision model must not be called from
	// the download goroutines (each downloaded bundle is private).
	want := append([]float64(nil), fx.Bundle.Decision.Scores(probe)...)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Client per goroutine is not required — Client is
			// stateless — but exercising a shared one is the point:
			c := Client{BaseURL: ts.URL}
			m, err := c.FetchManifest(context.Background())
			if err != nil {
				t.Errorf("manifest: %v", err)
				return
			}
			if len(m.Models) != fx.Bundle.NumModels() || m.BundleBytes != srv.Manifest().BundleBytes {
				t.Errorf("manifest diverged: %+v", m)
				return
			}
			b, err := c.FetchBundle(context.Background())
			if err != nil {
				t.Errorf("bundle: %v", err)
				return
			}
			if got := b.Decision.Scores(probe); len(got) != len(want) {
				t.Errorf("downloaded bundle ranks %d models, want %d", len(got), len(want))
			} else {
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("downloaded bundle scores diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// stallOnceHandler stalls the first hit to each path longer than the
// client's timeout, then delegates to the real handler.
type stallOnceHandler struct {
	inner   http.Handler
	stall   time.Duration
	mu      sync.Mutex
	stalled map[string]bool
	hits    atomic.Int64
}

func (h *stallOnceHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.hits.Add(1)
	h.mu.Lock()
	first := !h.stalled[r.URL.Path]
	h.stalled[r.URL.Path] = true
	h.mu.Unlock()
	if first {
		select {
		case <-r.Context().Done(): // client gave up
		case <-time.After(h.stall):
		}
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestClientTimeoutThenRetry points a short-timeout client at a server
// whose first response stalls: without retries the fetch fails; with
// retries the second attempt succeeds.
func TestClientTimeoutThenRetry(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	h := &stallOnceHandler{inner: srv.Handler(), stall: 5 * time.Second, stalled: make(map[string]bool)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	impatient := &http.Client{Timeout: 100 * time.Millisecond}

	noRetry := Client{BaseURL: ts.URL, HTTPClient: impatient}
	if _, err := noRetry.FetchManifest(context.Background()); err == nil {
		t.Fatal("stalled fetch succeeded without retries")
	}

	h.hits.Store(0)
	h.mu.Lock()
	h.stalled = make(map[string]bool)
	h.mu.Unlock()
	withRetry := Client{BaseURL: ts.URL, HTTPClient: impatient, Retries: 2, RetryDelay: 10 * time.Millisecond}
	m, err := withRetry.FetchManifest(context.Background())
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(m.Models) != fx.Bundle.NumModels() {
		t.Fatalf("manifest after retry lists %d models, want %d", len(m.Models), fx.Bundle.NumModels())
	}
	if got := h.hits.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (stall + success)", got)
	}
	if b, err := withRetry.FetchBundle(context.Background()); err != nil {
		t.Fatalf("bundle after stall: %v", err)
	} else if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestClientRetryRespectsContext cancels between attempts: the retry
// loop must stop on the context, not sleep through it.
func TestClientRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := Client{BaseURL: ts.URL, Retries: 100, RetryDelay: 30 * time.Millisecond}
	start := time.Now()
	_, err := c.FetchManifest(ctx)
	if err == nil {
		t.Fatal("fetch against a 503 server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
}

// TestClientDoesNotRetryClientErrors: a 404 is definitive; the client
// must not hammer the server.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c := Client{BaseURL: ts.URL, Retries: 5, RetryDelay: time.Millisecond}
	_, err := c.FetchManifest(context.Background())
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404 error, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("client retried a 404 (%d attempts)", got)
	}
}

// TestClientRetries5xx: a transient 500 burst is retried until the
// server recovers.
func TestClientRetries5xx(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := Client{BaseURL: ts.URL, Retries: 3, RetryDelay: time.Millisecond}
	if _, err := c.FetchManifest(context.Background()); err != nil {
		t.Fatalf("retry did not outlast the 500 burst: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}
