package repo

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"anole/internal/nn"
	"anole/internal/testutil"
)

func TestServerETagRevalidation(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := Client{BaseURL: ts.URL}
	ctx := context.Background()

	// First fetch pays the full payload and yields an ETag.
	b, etag, notMod, err := c.FetchBundleConditional(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if notMod || b == nil || etag == "" {
		t.Fatalf("first fetch: notMod=%v bundle=%v etag=%q", notMod, b != nil, etag)
	}
	// Revalidation with the same ETag costs a 304, no payload.
	b2, etag2, notMod, err := c.FetchBundleConditional(ctx, etag)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod || b2 != nil {
		t.Fatalf("revalidation: notMod=%v bundle=%v", notMod, b2 != nil)
	}
	if etag2 != etag {
		t.Fatalf("etag changed on 304: %q vs %q", etag2, etag)
	}
	// A stale ETag downloads the bundle again.
	b3, _, notMod, err := c.FetchBundleConditional(ctx, `"stale"`)
	if err != nil {
		t.Fatal(err)
	}
	if notMod || b3 == nil {
		t.Fatal("stale etag did not refetch")
	}
}

func TestServerModelEndpoint(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := Client{BaseURL: ts.URL}
	ctx := context.Background()

	det := fx.Bundle.Detectors[0]
	data, etag, notMod, err := c.FetchModelConditional(ctx, det.Name, "")
	if err != nil {
		t.Fatal(err)
	}
	if notMod || len(data) == 0 || etag == "" {
		t.Fatalf("model fetch: notMod=%v bytes=%d etag=%q", notMod, len(data), etag)
	}
	// The payload is the model's serialized network, byte for byte.
	net, err := nn.ReadWeights(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode model payload: %v", err)
	}
	if net.ParamCount() != det.Weights().ParamCount() {
		t.Fatalf("decoded params %d, want %d", net.ParamCount(), det.Weights().ParamCount())
	}
	// Revalidation costs a 304.
	data2, _, notMod, err := c.FetchModelConditional(ctx, det.Name, etag)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod || data2 != nil {
		t.Fatalf("model revalidation: notMod=%v bytes=%d", notMod, len(data2))
	}
	// FetchModel / FetchModelNow report size and duration.
	n, d, err := c.FetchModel(ctx, det.Name)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || d < 0 {
		t.Fatalf("FetchModel: %d bytes in %v, want %d", n, d, len(data))
	}
	if n2, _, err := c.FetchModelNow(ctx, det.Name); err != nil || n2 != n {
		t.Fatalf("FetchModelNow: %d bytes, err %v", n2, err)
	}
	// Unknown models 404 and are not retried into success.
	if _, _, err := c.FetchModel(ctx, "no-such-model"); err == nil {
		t.Fatal("unknown model fetched")
	}
}

func TestServerManifestETagAndMatching(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("manifest response has no ETag")
	}
	// If-None-Match list and wildcard forms both revalidate.
	for _, inm := range []string{etag, `"other", ` + etag, "W/" + etag, "*"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/manifest", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d", inm, resp.StatusCode)
		}
	}
	// A non-matching tag serves the full manifest.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/manifest", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", `"nope"`)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("non-matching If-None-Match: status %d", resp2.StatusCode)
	}
}
