// Package detect implements the object-detection task on synth frames: a
// grid detector applies a shared per-cell MLP head to every cell of the
// feature grid, predicting objectness and object class. Two architecture
// configurations mirror the paper's detector pair — Deep (the YOLOv3
// analogue) and Compressed (the YOLOv3-tiny analogue) — with roughly a 10×
// FLOPs gap, and evaluation reports precision/recall/F1 by cell-level
// matching.
package detect

import (
	"fmt"
	"math"

	"anole/internal/nn"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Arch names a detector architecture: the hidden widths of the per-cell
// head.
type Arch struct {
	Name   string
	Hidden []int
}

// Deep is the large-detector configuration (YOLOv3 analogue) and
// Compressed the small one (YOLOv3-tiny analogue). With the default
// 18-dimensional cell input their per-frame FLOPs differ by roughly the
// paper's 10×.
var (
	Deep       = Arch{Name: "deep", Hidden: []int{56, 48}}
	Compressed = Arch{Name: "compressed", Hidden: []int{16}}
)

// Detector is a grid detector over an immutable per-cell head. The
// frozen weights carry no execution state, so one Detector serves any
// number of goroutines concurrently — streams, workers, and cache
// entries all share the same resident copy. Training state exists only
// transiently inside Train (thaw → fit → refreeze).
type Detector struct {
	// Name identifies the model (e.g. "M_7" for a scene-specific
	// compressed model, "SDM" for the deep baseline).
	Name string
	Arch Arch

	weights *nn.Weights
	featDim int
}

// NewDetector constructs a detector head for frames with the given
// per-cell feature dimension.
func NewDetector(name string, arch Arch, featDim int, rng *xrand.RNG) *Detector {
	net := nn.NewMLP(nn.MLPConfig{
		InDim:  synth.CellInputDim(featDim),
		Hidden: arch.Hidden,
		OutDim: synth.DetectorOutDim,
	}, rng)
	return &Detector{Name: name, Arch: arch, weights: net.Freeze(), featDim: featDim}
}

// FromWeights wraps frozen (e.g. deserialized or quantized) weights as a
// detector. The input dimension must match CellInputDim(featDim).
func FromWeights(name string, arch Arch, featDim int, w *nn.Weights) (*Detector, error) {
	if w.InDim() != synth.CellInputDim(featDim) {
		return nil, fmt.Errorf("detect: network input %d, want %d", w.InDim(), synth.CellInputDim(featDim))
	}
	if w.OutDim() != synth.DetectorOutDim {
		return nil, fmt.Errorf("detect: network output %d, want %d", w.OutDim(), synth.DetectorOutDim)
	}
	return &Detector{Name: name, Arch: arch, weights: w, featDim: featDim}, nil
}

// FromNetwork freezes an existing (e.g. freshly trained) network and
// wraps it as a detector.
func FromNetwork(name string, arch Arch, featDim int, net *nn.Network) (*Detector, error) {
	return FromWeights(name, arch, featDim, net.Freeze())
}

// FeatDim returns the per-cell feature dimension the detector expects.
func (d *Detector) FeatDim() int { return d.featDim }

// Weights exposes the frozen per-cell head program (for serialization,
// quantization, and byte-level cache accounting).
func (d *Detector) Weights() *nn.Weights { return d.weights }

// WeightBytes returns the serialized parameter size of the head.
func (d *Detector) WeightBytes() int64 { return d.weights.WeightBytes() }

// SizeBytes returns the exact serialized size of the head program — the
// figure the model cache uses for resident-set accounting.
func (d *Detector) SizeBytes() int64 { return d.weights.SizeBytes() }

// FLOPs returns the per-cell head cost of one forward pass.
func (d *Detector) FLOPs() int64 { return d.weights.FLOPs() }

// FrameFLOPs returns the FLOPs of detecting one full frame with cells
// grid cells.
func (d *Detector) FrameFLOPs(cells int) int64 {
	return d.weights.FLOPs() * int64(cells)
}

// CellPred is the detector output for one cell.
type CellPred struct {
	Objectness float64 // sigmoid probability of an object
	Class      synth.Class
}

// objectnessThreshold converts the objectness probability into a
// detection decision.
const objectnessThreshold = 0.5

// DetectFrame runs the head over every cell of f, writing predictions
// into dst (reused when correctly sized) and returning it. The weights
// are immutable and the per-call working set (scratch, input staging,
// output buffer) is acquired once per frame, so DetectFrame is safe to
// call concurrently on one shared Detector and the per-cell loop
// performs no heap allocations.
func (d *Detector) DetectFrame(dst []CellPred, f *synth.Frame) []CellPred {
	cells := f.NumCells()
	if len(dst) != cells {
		dst = make([]CellPred, cells)
	}
	ctx := synth.FrameFeature(f)
	s := d.weights.AcquireScratch()
	in := s.In(d.weights.InDim())
	out := s.Out(d.weights.OutDim())
	for c := 0; c < cells; c++ {
		synth.CellInput(in, f, c, ctx)
		d.weights.Infer(out, in, s)
		obj := 1 / (1 + math.Exp(-out[0]))
		classIdx := tensor.Vector(out[1:]).Argmax()
		dst[c] = CellPred{Objectness: obj, Class: synth.Class(classIdx)}
	}
	d.weights.ReleaseScratch(s)
	return dst
}

// detectBatchRows bounds how many cell rows DetectBatch stages per
// matrix product, so batching over many frames keeps a fixed working
// set instead of materializing frames × cells rows at once.
const detectBatchRows = 512

// DetectBatch runs the head over every cell of every frame, batched:
// cell inputs are assembled into a staging matrix (whole frames at a
// time, flushed at detectBatchRows rows) and each dense layer runs as
// one matrix product for the chunk instead of one per cell. dsts is
// reused per frame when correctly sized, exactly like DetectFrame's
// dst. Per cell the predictions are bit-identical to DetectFrame: the
// batched kernel keeps each dot product's summation order, and the
// sigmoid/argmax decode is the same code. Safe to call concurrently on
// one shared Detector; with pre-sized dsts the steady state performs no
// heap allocations.
func (d *Detector) DetectBatch(dsts [][]CellPred, frames []*synth.Frame) [][]CellPred {
	if len(dsts) != len(frames) {
		dsts = make([][]CellPred, len(frames))
	}
	if len(frames) == 0 {
		return dsts
	}
	bs := d.weights.AcquireBatchScratch()
	defer d.weights.ReleaseBatchScratch(bs)
	// The vector scratch's staging buffer holds the frame context:
	// FrameFeatureDim and CellInputDim coincide, so it is wide enough.
	vs := d.weights.AcquireScratch()
	defer d.weights.ReleaseScratch(vs)
	ctx := vs.In(synth.FrameFeatureDim(d.featDim))

	inDim, outDim := d.weights.InDim(), d.weights.OutDim()
	start := 0
	for start < len(frames) {
		// Take whole frames until the chunk would exceed the row budget
		// (always at least one frame, however many cells it has).
		end, rows := start, 0
		for end < len(frames) {
			cells := frames[end].NumCells()
			if end > start && rows+cells > detectBatchRows {
				break
			}
			rows += cells
			end++
		}
		in := bs.In(rows, inDim)
		r := 0
		for j := start; j < end; j++ {
			f := frames[j]
			synth.FrameFeatureInto(ctx, f)
			for c := 0; c < f.NumCells(); c++ {
				synth.CellInput(in.Row(r), f, c, ctx)
				r++
			}
		}
		out := bs.Out(rows, outDim)
		d.weights.InferBatch(out, in, bs)
		r = 0
		for j := start; j < end; j++ {
			f := frames[j]
			cells := f.NumCells()
			if len(dsts[j]) != cells {
				dsts[j] = make([]CellPred, cells)
			}
			for c := 0; c < cells; c++ {
				orow := out.Row(r)
				obj := 1 / (1 + math.Exp(-orow[0]))
				classIdx := tensor.Vector(orow[1:]).Argmax()
				dsts[j][c] = CellPred{Objectness: obj, Class: synth.Class(classIdx)}
				r++
			}
		}
		start = end
	}
	return dsts
}

// EvaluateFrame scores the detector on one frame with cell-level
// matching: a true positive requires a predicted object on a cell holding
// an object of the predicted class; a class mistake counts as both a
// false positive and a missed object.
func (d *Detector) EvaluateFrame(f *synth.Frame) stats.PRF1 {
	preds := d.DetectFrame(nil, f)
	return ScorePredictions(preds, f)
}

// ScorePredictions computes the matching counts between per-cell
// predictions and frame ground truth.
func ScorePredictions(preds []CellPred, f *synth.Frame) stats.PRF1 {
	var tp, fp, fn int
	for c := 0; c < f.NumCells(); c++ {
		predicted := preds[c].Objectness > objectnessThreshold
		truth, hasObj := f.ObjectAt(c)
		switch {
		case predicted && hasObj && preds[c].Class == truth.Class:
			tp++
		case predicted && hasObj:
			fp++
			fn++
		case predicted:
			fp++
		case hasObj:
			fn++
		}
	}
	return stats.ComputePRF1(tp, fp, fn)
}

// EvaluateFrames accumulates matching counts over frames and returns the
// aggregate metrics.
func (d *Detector) EvaluateFrames(frames []*synth.Frame) stats.PRF1 {
	var agg stats.PRF1
	for _, f := range frames {
		agg = agg.Add(d.EvaluateFrame(f))
	}
	return agg
}

// TrainConfig controls detector training.
type TrainConfig struct {
	// Epochs, BatchSize and LR configure the underlying nn.Train run
	// (defaults 12, 32, 0.01).
	Epochs    int
	BatchSize int
	LR        float64
	// BackgroundPerObject is the number of background cells sampled per
	// object cell when building training samples (default 1.5). Using
	// every background cell would drown the loss in negatives.
	BackgroundPerObject float64
	// Patience enables early stopping on validation loss when > 0.
	Patience int
	// Workers shards gradient computation (default 1).
	Workers int
	// RNG drives sampling and initialization; required.
	RNG *xrand.RNG
}

func (c *TrainConfig) setDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 25
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.BackgroundPerObject <= 0 {
		c.BackgroundPerObject = 1.5
	}
	if c.RNG == nil {
		c.RNG = xrand.New(0)
	}
}

// BuildSamples converts frames into per-cell training samples: every
// object cell plus bgPerObject background cells per object (at least one
// background cell per frame), so the detector sees a balanced objectness
// signal.
func BuildSamples(frames []*synth.Frame, bgPerObject float64, rng *xrand.RNG) []nn.Sample {
	var samples []nn.Sample
	for _, f := range frames {
		ctx := synth.FrameFeature(f)
		occupied := make(map[int]bool, len(f.Objects))
		for _, o := range f.Objects {
			occupied[o.Cell] = true
			samples = append(samples, nn.Sample{
				X: synth.CellInput(nil, f, o.Cell, ctx),
				Y: synth.CellTarget(nil, f, o.Cell),
			})
		}
		nBG := int(bgPerObject*float64(len(f.Objects)) + 0.5)
		if nBG < 1 {
			nBG = 1
		}
		cells := f.NumCells()
		for k := 0; k < nBG; k++ {
			c := rng.Intn(cells)
			if occupied[c] {
				continue // keep the negative pool clean; skip silently
			}
			samples = append(samples, nn.Sample{
				X: synth.CellInput(nil, f, c, ctx),
				Y: synth.CellTarget(nil, f, c),
			})
		}
	}
	return samples
}

// Train fits the detector to the training frames with BCE-with-logits on
// the objectness/class head. The frozen weights are thawed into a
// transient nn.Trainable, fitted, and refrozen; inference on the old
// weights may continue concurrently in other goroutines (they keep the
// program they hold), but Train itself must not race with another Train
// on the same Detector.
func (d *Detector) Train(trainFrames, valFrames []*synth.Frame, cfg TrainConfig) error {
	cfg.setDefaults()
	train := BuildSamples(trainFrames, cfg.BackgroundPerObject, cfg.RNG)
	if len(train) == 0 {
		return fmt.Errorf("detect: no training samples from %d frames", len(trainFrames))
	}
	var val []nn.Sample
	if len(valFrames) > 0 && cfg.Patience > 0 {
		val = BuildSamples(valFrames, cfg.BackgroundPerObject, cfg.RNG)
	}
	tr := nn.ThawTrainable(d.weights)
	_, err := tr.Train(train, val, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Loss:      nn.NewBCEWithLogits(),
		Optimizer: nn.NewAdam(cfg.LR),
		RNG:       cfg.RNG,
		Patience:  cfg.Patience,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return fmt.Errorf("detect: train %s: %w", d.Name, err)
	}
	d.weights = tr.Freeze()
	return nil
}

// WindowedF1 returns the F1 score of the detector computed over
// consecutive windows of `window` frames of a clip, the form plotted in
// Fig. 8 ("F1 score is calculated every ten frames").
func (d *Detector) WindowedF1(frames []*synth.Frame, window int) []float64 {
	if window <= 0 {
		window = 10
	}
	var out []float64
	for start := 0; start < len(frames); start += window {
		end := start + window
		if end > len(frames) {
			end = len(frames)
		}
		var agg stats.PRF1
		for _, f := range frames[start:end] {
			agg = agg.Add(d.EvaluateFrame(f))
		}
		out = append(out, agg.F1)
	}
	return out
}
