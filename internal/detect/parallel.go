package detect

import (
	"runtime"
	"sync"

	"anole/internal/stats"
	"anole/internal/synth"
)

// EvaluateFramesParallel scores the detector over frames using `workers`
// goroutines (≤0 selects GOMAXPROCS). Every worker runs the same shared
// frozen weights — each acquires its own scratch inside DetectFrame —
// and the per-frame matching counts are summed, so the result is exactly
// EvaluateFrames' (integer counts commute).
func (d *Detector) EvaluateFramesParallel(frames []*synth.Frame, workers int) stats.PRF1 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	if workers <= 1 {
		return d.EvaluateFrames(frames)
	}

	partials := make([]stats.PRF1, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var agg stats.PRF1
			for i := w; i < len(frames); i += workers {
				agg = agg.Add(d.EvaluateFrame(frames[i]))
			}
			partials[w] = agg
		}(w)
	}
	wg.Wait()

	var total stats.PRF1
	for _, p := range partials {
		total = total.Add(p)
	}
	return total
}

// OracleF1 scores the per-frame best model over the given detectors,
// parallelizing across frames. All workers share the same frozen
// detectors — no cloning, one resident copy of every model. It returns
// the aggregate metrics of always picking the best model per frame —
// the selection upper bound used by the harness.
func OracleF1(detectors []*Detector, frames []*synth.Frame, workers int) stats.PRF1 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	if workers < 1 {
		workers = 1
	}

	partials := make([]stats.PRF1, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var agg stats.PRF1
			for i := w; i < len(frames); i += workers {
				bestF1 := -1.0
				var best stats.PRF1
				for _, det := range detectors {
					if m := det.EvaluateFrame(frames[i]); m.F1 > bestF1 {
						bestF1, best = m.F1, m
					}
				}
				agg = agg.Add(best)
			}
			partials[w] = agg
		}(w)
	}
	wg.Wait()

	var total stats.PRF1
	for _, p := range partials {
		total = total.Add(p)
	}
	return total
}
