package detect

import (
	"testing"

	"anole/internal/nn"
	"anole/internal/synth"
	"anole/internal/xrand"
)

func newTestWorld(t *testing.T, seed uint64) *synth.World {
	t.Helper()
	w, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func genFrames(w *synth.World, s synth.Scene, n int, rng *xrand.RNG) []*synth.Frame {
	frames := make([]*synth.Frame, n)
	for i := range frames {
		frames[i] = w.GenerateFrame(s, 1, rng)
	}
	return frames
}

func TestArchFLOPsRatio(t *testing.T) {
	rng := xrand.New(1)
	deep := NewDetector("deep", Deep, 8, rng)
	tiny := NewDetector("tiny", Compressed, 8, rng)
	ratio := float64(deep.FLOPs()) / float64(tiny.FLOPs())
	// The paper's YOLOv3 / YOLOv3-tiny gap is 65.86/5.56 ≈ 11.8×.
	if ratio < 6 || ratio > 20 {
		t.Fatalf("deep/tiny FLOPs ratio = %v, want roughly 10x", ratio)
	}
}

func TestDetectFrameShape(t *testing.T) {
	w := newTestWorld(t, 2)
	rng := xrand.New(3)
	d := NewDetector("d", Compressed, 8, rng)
	f := w.GenerateFrame(synth.Scene{Weather: synth.Clear, Location: synth.Urban}, 1, rng)
	preds := d.DetectFrame(nil, f)
	if len(preds) != f.NumCells() {
		t.Fatalf("preds = %d", len(preds))
	}
	for _, p := range preds {
		if p.Objectness < 0 || p.Objectness > 1 {
			t.Fatalf("objectness %v", p.Objectness)
		}
		if int(p.Class) < 0 || int(p.Class) >= synth.NumClasses {
			t.Fatalf("class %v", p.Class)
		}
	}
	// dst reuse
	preds2 := d.DetectFrame(preds, f)
	if &preds2[0] != &preds[0] {
		t.Fatal("DetectFrame should reuse dst")
	}
}

func TestFromNetworkValidation(t *testing.T) {
	rng := xrand.New(4)
	good := nn.NewMLP(nn.MLPConfig{InDim: synth.CellInputDim(8), Hidden: []int{4}, OutDim: synth.DetectorOutDim}, rng)
	if _, err := FromNetwork("x", Compressed, 8, good); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	badIn := nn.NewMLP(nn.MLPConfig{InDim: 7, OutDim: synth.DetectorOutDim}, rng)
	if _, err := FromNetwork("x", Compressed, 8, badIn); err == nil {
		t.Fatal("wrong input dim accepted")
	}
	badOut := nn.NewMLP(nn.MLPConfig{InDim: synth.CellInputDim(8), OutDim: 3}, rng)
	if _, err := FromNetwork("x", Compressed, 8, badOut); err == nil {
		t.Fatal("wrong output dim accepted")
	}
}

func TestBuildSamplesBalance(t *testing.T) {
	w := newTestWorld(t, 5)
	rng := xrand.New(6)
	frames := genFrames(w, synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 40, rng)
	samples := BuildSamples(frames, 1.0, rng)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var pos, neg int
	for _, s := range samples {
		if s.Y[0] > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("unbalanced: %d pos, %d neg", pos, neg)
	}
	ratio := float64(neg) / float64(pos)
	if ratio > 2.5 {
		t.Fatalf("background ratio = %v, want ~1", ratio)
	}
}

func TestTrainImprovesF1(t *testing.T) {
	w := newTestWorld(t, 7)
	rng := xrand.New(8)
	scene := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	train := genFrames(w, scene, 120, rng)
	test := genFrames(w, scene, 40, rng)

	d := NewDetector("tiny", Compressed, 8, rng)
	before := d.EvaluateFrames(test).F1
	if err := d.Train(train, nil, TrainConfig{Epochs: 15, RNG: rng}); err != nil {
		t.Fatal(err)
	}
	after := d.EvaluateFrames(test).F1
	if after <= before {
		t.Fatalf("training did not improve F1: %v -> %v", before, after)
	}
	if after < 0.5 {
		t.Fatalf("in-scene F1 = %v, want > 0.5", after)
	}
}

func TestSceneSpecialistBeatsItselfOutOfScene(t *testing.T) {
	// The core premise of the paper: a compressed model trained on one
	// scene degrades on a very different scene.
	w := newTestWorld(t, 9)
	rng := xrand.New(10)
	home := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	away := synth.Scene{Weather: synth.Foggy, Location: synth.Tunnel, Time: synth.Night}
	train := genFrames(w, home, 150, rng)
	homeTest := genFrames(w, home, 50, rng)
	awayTest := genFrames(w, away, 50, rng)

	d := NewDetector("tiny", Compressed, 8, rng)
	if err := d.Train(train, nil, TrainConfig{Epochs: 15, RNG: rng}); err != nil {
		t.Fatal(err)
	}
	homeF1 := d.EvaluateFrames(homeTest).F1
	awayF1 := d.EvaluateFrames(awayTest).F1
	if homeF1 <= awayF1 {
		t.Fatalf("specialist should degrade out of scene: home %v vs away %v", homeF1, awayF1)
	}
}

func TestTrainNoFrames(t *testing.T) {
	rng := xrand.New(11)
	d := NewDetector("x", Compressed, 8, rng)
	if err := d.Train(nil, nil, TrainConfig{RNG: rng}); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestScorePredictionsMatching(t *testing.T) {
	w := newTestWorld(t, 12)
	rng := xrand.New(13)
	var f *synth.Frame
	for {
		f = w.GenerateFrame(synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 2, rng)
		if len(f.Objects) >= 2 {
			break
		}
	}
	// Perfect predictions.
	preds := make([]CellPred, f.NumCells())
	for c := range preds {
		if obj, ok := f.ObjectAt(c); ok {
			preds[c] = CellPred{Objectness: 0.9, Class: obj.Class}
		} else {
			preds[c] = CellPred{Objectness: 0.1}
		}
	}
	m := ScorePredictions(preds, f)
	if m.F1 != 1 {
		t.Fatalf("perfect predictions F1 = %v", m.F1)
	}

	// Wrong class on one object: one FP and one FN.
	obj := f.Objects[0]
	preds[obj.Cell].Class = synth.Class((int(obj.Class) + 1) % synth.NumClasses)
	m = ScorePredictions(preds, f)
	if m.TP != len(f.Objects)-1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("class-mistake counts: %+v", m)
	}

	// All-negative predictions: zero precision and recall.
	for c := range preds {
		preds[c].Objectness = 0
	}
	m = ScorePredictions(preds, f)
	if m.TP != 0 || m.FN != len(f.Objects) {
		t.Fatalf("all-negative counts: %+v", m)
	}
}

func TestWindowedF1(t *testing.T) {
	w := newTestWorld(t, 14)
	rng := xrand.New(15)
	d := NewDetector("x", Compressed, 8, rng)
	frames := genFrames(w, synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 25, rng)
	f1s := d.WindowedF1(frames, 10)
	if len(f1s) != 3 {
		t.Fatalf("windows = %d, want 3", len(f1s))
	}
	for _, v := range f1s {
		if v < 0 || v > 1 {
			t.Fatalf("window F1 %v", v)
		}
	}
	if got := d.WindowedF1(frames, 0); len(got) != 3 {
		t.Fatalf("default window: %d", len(got))
	}
}

func TestFrameFLOPs(t *testing.T) {
	rng := xrand.New(16)
	d := NewDetector("x", Compressed, 8, rng)
	if d.FrameFLOPs(64) != d.FLOPs()*64 {
		t.Fatal("frame FLOPs wrong")
	}
	if d.FeatDim() != 8 {
		t.Fatal("feat dim wrong")
	}
}

func TestTrainWithEarlyStopping(t *testing.T) {
	w := newTestWorld(t, 17)
	rng := xrand.New(18)
	scene := synth.Scene{Weather: synth.Clear, Location: synth.Residential, Time: synth.Daytime}
	train := genFrames(w, scene, 60, rng)
	val := genFrames(w, scene, 20, rng)
	d := NewDetector("x", Compressed, 8, rng)
	if err := d.Train(train, val, TrainConfig{Epochs: 30, Patience: 3, RNG: rng}); err != nil {
		t.Fatal(err)
	}
	if f1 := d.EvaluateFrames(val).F1; f1 < 0.3 {
		t.Fatalf("early-stopped detector too weak: F1 %v", f1)
	}
}

func BenchmarkDetectFrame(b *testing.B) {
	w, err := synth.NewWorld(synth.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	d := NewDetector("x", Compressed, 8, rng)
	f := w.GenerateFrame(synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 1, rng)
	preds := make([]CellPred, f.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectFrame(preds, f)
	}
}
