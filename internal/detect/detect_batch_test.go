package detect

import (
	"testing"

	"anole/internal/synth"
	"anole/internal/xrand"
)

// TestDetectBatchMatchesDetectFrame pins the batched detector bitwise
// against the per-frame path across enough frames to force multiple
// staging chunks (25 frames × 64 cells = 1600 rows > detectBatchRows).
// Equality is exact: batched dense layers keep each dot product's
// summation order and the sigmoid/argmax decode is shared code.
func TestDetectBatchMatchesDetectFrame(t *testing.T) {
	w := newTestWorld(t, 61)
	rng := xrand.New(62)
	d := NewDetector("d", Compressed, 8, rng)
	frames := genFrames(w, synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 25, rng)
	got := d.DetectBatch(nil, frames)
	if len(got) != len(frames) {
		t.Fatalf("DetectBatch returned %d frame slots, want %d", len(got), len(frames))
	}
	for i, f := range frames {
		want := d.DetectFrame(nil, f)
		if len(got[i]) != len(want) {
			t.Fatalf("frame %d: %d preds, want %d", i, len(got[i]), len(want))
		}
		for c := range want {
			if got[i][c] != want[c] {
				t.Fatalf("frame %d cell %d: batched %+v, sequential %+v", i, c, got[i][c], want[c])
			}
		}
	}
}

// TestDetectBatchMixedDetectors checks batched equivalence holds for the
// deep architecture and for a quantized head — both are just other
// frozen programs behind the same batch path.
func TestDetectBatchMixedDetectors(t *testing.T) {
	w := newTestWorld(t, 63)
	rng := xrand.New(64)
	frames := genFrames(w, synth.Scene{Weather: synth.Rainy, Location: synth.Highway, Time: synth.Night}, 4, rng)

	deep := NewDetector("deep", Deep, 8, rng)
	qw, err := deep.Weights().Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := FromWeights("deep-q8", Deep, 8, qw)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Detector{deep, quant} {
		got := d.DetectBatch(nil, frames)
		for i, f := range frames {
			want := d.DetectFrame(nil, f)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("%s frame %d cell %d: batched %+v, sequential %+v", d.Name, i, c, got[i][c], want[c])
				}
			}
		}
	}
}

// TestDetectBatchReusesDsts pins the dst-reuse contract: pre-sized
// per-frame slices are written in place, matching DetectFrame's reuse
// semantics, and the empty batch is a no-op.
func TestDetectBatchReusesDsts(t *testing.T) {
	w := newTestWorld(t, 65)
	rng := xrand.New(66)
	d := NewDetector("d", Compressed, 8, rng)
	frames := genFrames(w, synth.Scene{Weather: synth.Clear, Location: synth.Urban}, 3, rng)
	dsts := make([][]CellPred, len(frames))
	for i, f := range frames {
		dsts[i] = make([]CellPred, f.NumCells())
	}
	got := d.DetectBatch(dsts, frames)
	for i := range got {
		if &got[i][0] != &dsts[i][0] {
			t.Fatalf("frame %d: DetectBatch should reuse the pre-sized dst slice", i)
		}
	}
	if out := d.DetectBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d slots", len(out))
	}
}
