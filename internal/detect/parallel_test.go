package detect

import (
	"testing"

	"anole/internal/synth"
	"anole/internal/xrand"
)

func TestEvaluateFramesParallelMatchesSerial(t *testing.T) {
	w := newTestWorld(t, 50)
	rng := xrand.New(51)
	scene := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	train := genFrames(w, scene, 80, rng)
	test := genFrames(w, scene, 60, rng)
	d := NewDetector("p", Compressed, 8, rng)
	if err := d.Train(train, nil, TrainConfig{Epochs: 10, RNG: rng}); err != nil {
		t.Fatal(err)
	}
	serial := d.EvaluateFrames(test)
	for _, workers := range []int{0, 1, 2, 4, 7, 100} {
		parallel := d.EvaluateFramesParallel(test, workers)
		if parallel != serial {
			t.Fatalf("workers=%d: %+v vs %+v", workers, parallel, serial)
		}
	}
}

func TestEvaluateFramesParallelEmpty(t *testing.T) {
	d := NewDetector("p", Compressed, 8, xrand.New(1))
	m := d.EvaluateFramesParallel(nil, 4)
	if m.TP != 0 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("empty eval: %+v", m)
	}
}

func TestOracleF1MatchesSerialOracle(t *testing.T) {
	w := newTestWorld(t, 52)
	rng := xrand.New(53)
	sceneA := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	sceneB := synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Night}
	var test []*synth.Frame
	test = append(test, genFrames(w, sceneA, 25, rng)...)
	test = append(test, genFrames(w, sceneB, 25, rng)...)

	mk := func(s synth.Scene, seed uint64) *Detector {
		r := xrand.New(seed)
		d := NewDetector("m", Compressed, 8, r)
		if err := d.Train(genFrames(w, s, 80, r), nil, TrainConfig{Epochs: 10, RNG: r}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	dets := []*Detector{mk(sceneA, 60), mk(sceneB, 61)}

	// Serial reference.
	var serial struct{ tp, fp, fn int }
	for _, f := range test {
		bestF1 := -1.0
		var best = dets[0].EvaluateFrame(f)
		bestF1 = best.F1
		if m := dets[1].EvaluateFrame(f); m.F1 > bestF1 {
			best = m
		}
		serial.tp += best.TP
		serial.fp += best.FP
		serial.fn += best.FN
	}
	got := OracleF1(dets, test, 4)
	if got.TP != serial.tp || got.FP != serial.fp || got.FN != serial.fn {
		t.Fatalf("oracle mismatch: %+v vs %+v", got, serial)
	}
	// The oracle must be at least as good as either fixed model.
	for i, d := range dets {
		if f1 := d.EvaluateFramesParallel(test, 2).F1; got.F1 < f1 {
			t.Fatalf("oracle %v below fixed model %d's %v", got.F1, i, f1)
		}
	}
}
