package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestNewLabeledIndependence(t *testing.T) {
	a := NewLabeled(7, "alpha")
	b := NewLabeled(7, "beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labeled streams overlapped in %d/100 draws", same)
	}
}

func TestNewLabeledDeterministic(t *testing.T) {
	a := NewLabeled(7, "alpha")
	b := NewLabeled(7, "alpha")
	if a.Uint64() != b.Uint64() {
		t.Fatal("identical labels should give identical streams")
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(99)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children overlapped in %d/100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values out of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d got %d draws, expected ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMS(5, 2)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("NormMS mean = %v, want ~5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(9)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("Gamma(%v) returned negative %v", shape, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.06*shape+0.03 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestBetaMean(t *testing.T) {
	r := New(10)
	cases := []struct{ a, b float64 }{{1, 1}, {2, 5}, {5, 2}, {0.5, 0.5}}
	for _, tc := range cases {
		const n = 60000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Beta(tc.a, tc.b)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) returned %v", tc.a, tc.b, x)
			}
			sum += x
		}
		want := tc.a / (tc.a + tc.b)
		mean := sum / n
		if math.Abs(mean-want) > 0.02 {
			t.Fatalf("Beta(%v,%v) mean = %v, want ~%v", tc.a, tc.b, mean, want)
		}
	}
}

func TestBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Beta(0, 1) did not panic")
		}
	}()
	New(1).Beta(0, 1)
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(11)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Fatalf("bucket 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestCategoricalPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with zero weights did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.ShuffleInts(s)
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle changed multiset; sum = %d", sum)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(14)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(15)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRange(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range(-2,3) returned %v", v)
		}
	}
}

func TestMul128(t *testing.T) {
	tests := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tt := range tests {
		hi, lo := mul128(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestDirichletMoments(t *testing.T) {
	r := New(17)
	alphas := []float64{2, 5, 3}
	const n = 30000
	means := make([]float64, 3)
	buf := make([]float64, 3)
	for i := 0; i < n; i++ {
		r.Dirichlet(buf, alphas)
		var sum float64
		for j, v := range buf {
			if v < 0 || v > 1 {
				t.Fatalf("component %v out of range", v)
			}
			means[j] += v
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("draw sums to %v", sum)
		}
	}
	total := 10.0
	for j, a := range alphas {
		want := a / total
		got := means[j] / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("component %d mean %v, want ~%v", j, got, want)
		}
	}
}

func TestDirichletPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Dirichlet(nil, []float64{1, 0})
}

func TestDirichletAllocates(t *testing.T) {
	r := New(18)
	out := r.Dirichlet(nil, []float64{1, 1})
	if len(out) != 2 {
		t.Fatalf("allocated length %d", len(out))
	}
}
