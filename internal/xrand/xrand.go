// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must regenerate identically from a root seed. The
// standard library's math/rand/v2 sources are deterministic but awkward to
// split hierarchically; xrand derives independent child streams from
// (seed, label) pairs with SplitMix64 mixing, so subsystems can create
// private streams without coordinating counter state.
package xrand

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// xoshiro256** algorithm seeded through SplitMix64. The zero value is not
// usable; construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
	// spare holds a cached second Gaussian deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns an RNG deterministically derived from seed.
func New(seed uint64) *RNG {
	sm := seed
	r := &RNG{}
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9E3779B97F4A7C15
	}
	return r
}

// NewLabeled returns an RNG derived from seed and a string label, so that
// independent subsystems can obtain decorrelated streams from one root seed
// without consuming draws from each other.
func NewLabeled(seed uint64, label string) *RNG {
	h := fnv64a(label)
	return New(seed ^ (h * 0x9E3779B97F4A7C15))
}

// Split derives an independent child stream from the current generator
// state and an integer tag. The parent stream advances by one draw.
func (r *RNG) Split(tag uint64) *RNG {
	base := r.Uint64()
	return New(base ^ mix64(tag))
}

// Uint64 returns a uniformly distributed 64-bit value and advances the
// stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal deviate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.spareOK = true
	return u * f
}

// NormMS returns a normal deviate with the given mean and standard
// deviation.
func (r *RNG) NormMS(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponentially distributed deviate with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a gamma-distributed deviate with the given shape and
// scale 1, using the Marsaglia-Tsang method. It panics if shape <= 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b)-distributed deviate. It panics if a or b is
// non-positive.
func (r *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("xrand: Beta with non-positive parameters")
	}
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero. It
// panics if the weight sum is not positive.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: Categorical with non-positive weight sum")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place with a Fisher-Yates pass.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle swaps elements with the provided swap function, Fisher-Yates
// style, mirroring math/rand's API.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func mix64(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Dirichlet fills out with a draw from the Dirichlet distribution with
// the given concentration parameters (out is allocated when nil or
// mis-sized). It panics if alphas is empty or contains a non-positive
// value.
func (r *RNG) Dirichlet(out []float64, alphas []float64) []float64 {
	if len(alphas) == 0 {
		panic("xrand: Dirichlet with no parameters")
	}
	if len(out) != len(alphas) {
		out = make([]float64, len(alphas))
	}
	var sum float64
	for i, a := range alphas {
		if a <= 0 {
			panic("xrand: Dirichlet with non-positive concentration")
		}
		out[i] = r.Gamma(a)
		sum += out[i]
	}
	if sum == 0 {
		uniform := 1 / float64(len(out))
		for i := range out {
			out[i] = uniform
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
