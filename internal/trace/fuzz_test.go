package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzTraceReader feeds arbitrary byte streams — malformed JSON,
// truncated lines, binary garbage, oversized lines — into the JSONL
// reader. Read must either return events or an error; it must never
// panic, and whatever it accepts must survive Summarize/Render.
func FuzzTraceReader(f *testing.F) {
	// A well-formed two-event trace, as a Writer would emit it.
	var well bytes.Buffer
	w := NewWriter(&well)
	if err := w.Append(Event{Frame: 0, Scene: "city/clear/day", Desired: "M_1", Used: "M_1", Hit: true, F1: 0.8}); err != nil {
		f.Fatal(err)
	}
	if err := w.Append(Event{Frame: 1, Scene: "rural/rain/night", Desired: "M_2", Used: "M_1", Switched: true, LatencyUS: 1234}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	full := well.String()

	f.Add([]byte(full))
	f.Add([]byte(full[:len(full)-7])) // trailing partial line (interrupted run)
	f.Add([]byte("not json\n" + full))
	f.Add([]byte(full + "{\"frame\": oops}\n" + full))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{'})
	f.Add([]byte(`{"frame":-1,"f1":1e308,"latencyUs":-9223372036854775808}` + "\n"))
	f.Add([]byte(strings.Repeat("x", 4096) + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever Read accepts must be summarizable and renderable.
		s := Summarize(events)
		if s.Frames != len(events) {
			t.Fatalf("summary counted %d frames for %d events", s.Frames, len(events))
		}
		if s.Hits+s.Misses != s.Frames {
			t.Fatalf("hits %d + misses %d != frames %d", s.Hits, s.Misses, s.Frames)
		}
		s.Render(io.Discard)
	})
}
