package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/synth"
	"anole/internal/testutil"
)

func recordedTrace(t *testing.T, frames int) (*bytes.Buffer, []Event) {
	t.Helper()
	fx := testutil.Shared(t)
	rt, err := core.NewRuntime(fx.Bundle, core.RuntimeConfig{CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	test := fx.Corpus.Frames(synth.Test)
	if frames > len(test) {
		frames = len(test)
	}
	for _, f := range test[:frames] {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Record(fx.Bundle, f, res); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return &buf, events
}

func TestRecordAndRead(t *testing.T) {
	_, events := recordedTrace(t, 40)
	if len(events) != 40 {
		t.Fatalf("events = %d", len(events))
	}
	for i, ev := range events {
		if ev.Frame != i {
			t.Fatalf("frame numbering: %d at %d", ev.Frame, i)
		}
		if ev.Used == "" || ev.Desired == "" || ev.Scene == "" {
			t.Fatalf("missing fields: %+v", ev)
		}
		if ev.F1 < 0 || ev.F1 > 1 {
			t.Fatalf("f1 %v", ev.F1)
		}
	}
}

func TestReadToleratesTrailingPartialLine(t *testing.T) {
	buf, _ := recordedTrace(t, 10)
	truncated := buf.String() + `{"frame": 99, "cli` // interrupted write
	events, err := Read(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("events = %d, want 10", len(events))
	}
}

func TestReadRejectsInteriorCorruption(t *testing.T) {
	buf, _ := recordedTrace(t, 10)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	lines[4] = "not json"
	if _, err := Read(strings.NewReader(strings.Join(lines, "\n"))); err == nil {
		t.Fatal("interior corruption accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty read: %v, %d events", err, len(events))
	}
}

func TestSummarize(t *testing.T) {
	_, events := recordedTrace(t, 60)
	s := Summarize(events)
	if s.Frames != 60 {
		t.Fatalf("frames %d", s.Frames)
	}
	if s.Hits+s.Misses != 60 {
		t.Fatal("hits+misses must cover all frames")
	}
	if s.MeanF1 <= 0 || s.MeanF1 > 1 {
		t.Fatalf("mean F1 %v", s.MeanF1)
	}
	if len(s.ModelUse) == 0 || len(s.SceneUse) == 0 {
		t.Fatal("usage maps empty")
	}
	total := 0
	for _, n := range s.ModelUse {
		total += n
	}
	if total != 60 {
		t.Fatalf("model use sums to %d", total)
	}
	var out bytes.Buffer
	s.Render(&out)
	if out.Len() == 0 {
		t.Fatal("render empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Frames != 0 || s.MeanF1 != 0 || s.MeanLatency != time.Duration(0) {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if w.Count() != 0 {
		t.Fatal("fresh writer count")
	}
	if err := w.Append(Event{Frame: 0}); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Fatal("count not advanced")
	}
}
