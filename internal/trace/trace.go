// Package trace records the Online Model Inference loop's per-frame
// decisions as JSON Lines, so field runs can be analyzed offline (which
// models served which scenes, where the cache missed, where novelty
// spiked) and replayed into the experiment harness. The format is
// append-only and self-describing; a Reader tolerates trailing partial
// lines from interrupted runs.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"anole/internal/core"
	"anole/internal/synth"
)

// Event is one processed frame's record.
type Event struct {
	// Frame locates the input within its stream.
	Frame int `json:"frame"`
	// Clip and Index locate the source frame in its corpus when known.
	Clip  int `json:"clip"`
	Index int `json:"index"`
	// Scene is the semantic scene (generator metadata; absent in real
	// deployments, invaluable in analysis).
	Scene string `json:"scene"`
	// Desired and Used name the top-ranked and the serving model.
	Desired string `json:"desired"`
	Used    string `json:"used"`
	// Hit, Switched mirror core.FrameResult.
	Hit      bool `json:"hit"`
	Switched bool `json:"switched"`
	// F1 is the frame-level detection score.
	F1 float64 `json:"f1"`
	// Confidence and Novelty are the decision signals.
	Confidence float64 `json:"confidence"`
	Novelty    float64 `json:"novelty"`
	// LatencyUS is the simulated latency in microseconds (0 without a
	// device simulator).
	LatencyUS int64 `json:"latencyUs"`
}

// Writer appends events as JSON lines. It is not safe for concurrent
// use.
type Writer struct {
	w     *bufio.Writer
	enc   *json.Encoder
	count int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Record converts one runtime result into an event and appends it.
func (t *Writer) Record(b *core.Bundle, f *synth.Frame, res core.FrameResult) error {
	ev := Event{
		Frame:      t.count,
		Clip:       f.Clip,
		Index:      f.Index,
		Scene:      f.Scene.String(),
		Desired:    b.Detectors[res.Desired].Name,
		Used:       b.Detectors[res.Used].Name,
		Hit:        res.Hit,
		Switched:   res.Switched,
		F1:         res.Metrics.F1,
		Confidence: res.Confidence,
		Novelty:    res.Novelty,
		LatencyUS:  res.Latency.Microseconds(),
	}
	return t.Append(ev)
}

// Append writes a pre-built event.
func (t *Writer) Append(ev Event) error {
	if err := t.enc.Encode(ev); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.count++
	return nil
}

// Count returns the number of events written.
func (t *Writer) Count() int { return t.count }

// Flush writes buffered events through to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Read decodes every complete event from r. A trailing partial line
// (interrupted run) is tolerated; malformed interior lines are an error.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lastIncomplete := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate exactly one trailing bad line.
			lastIncomplete = true
			continue
		}
		if lastIncomplete {
			return nil, errors.New("trace: malformed event in the middle of the stream")
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	Frames       int
	Switches     int
	Hits, Misses int
	MeanF1       float64
	MeanLatency  time.Duration
	MaxNovelty   float64
	// ModelUse counts frames served per model name.
	ModelUse map[string]int
	// SceneUse counts frames per scene string.
	SceneUse map[string]int
}

// Summarize folds events into a Summary.
func Summarize(events []Event) Summary {
	s := Summary{ModelUse: make(map[string]int), SceneUse: make(map[string]int)}
	var f1Sum float64
	var latSum int64
	for _, ev := range events {
		s.Frames++
		if ev.Switched {
			s.Switches++
		}
		if ev.Hit {
			s.Hits++
		} else {
			s.Misses++
		}
		f1Sum += ev.F1
		latSum += ev.LatencyUS
		if ev.Novelty > s.MaxNovelty {
			s.MaxNovelty = ev.Novelty
		}
		s.ModelUse[ev.Used]++
		s.SceneUse[ev.Scene]++
	}
	if s.Frames > 0 {
		s.MeanF1 = f1Sum / float64(s.Frames)
		s.MeanLatency = time.Duration(latSum/int64(s.Frames)) * time.Microsecond
	}
	return s
}

// Render writes the summary as text.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "trace: %d frames, %d switches, %d hits / %d misses\n",
		s.Frames, s.Switches, s.Hits, s.Misses)
	fmt.Fprintf(w, "mean frame F1 %.3f, mean latency %s, max novelty %.2f\n",
		s.MeanF1, s.MeanLatency, s.MaxNovelty)
	fmt.Fprintf(w, "models used: %d distinct over %d scenes\n", len(s.ModelUse), len(s.SceneUse))
}
