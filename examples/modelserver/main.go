// Modelserver: the cloud↔device split. The "cloud" half profiles a
// bundle and serves it over HTTP; the "device" half inspects the
// manifest, downloads the bundle once, drops the connection, and runs
// fully offline — the deployment story of the paper's Fig. 2.
//
//	go run ./examples/modelserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/repo"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 5

	// --- cloud side -------------------------------------------------
	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.3))
	fmt.Println("[cloud] profiling bundle...")
	bundle, err := core.Profile(corpus, core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 20},
		Repertoire: scene.RepertoireConfig{
			N: 8, Delta: 0.05, MaxK: 6,
			Train: detect.TrainConfig{Epochs: 15},
		},
		Sampling: sampling.Config{Kappa: 600, AcceptF1: 0.3},
	})
	if err != nil {
		return err
	}
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("[cloud] serve: %v", err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("[cloud] repository listening at %s\n", baseURL)

	// --- device side ------------------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := &repo.Client{BaseURL: baseURL}

	manifest, err := client.FetchManifest(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("[device] manifest: %d models, %d bundle bytes\n",
		len(manifest.Models), manifest.BundleBytes)
	for _, m := range manifest.Models {
		fmt.Printf("[device]   %-5s %-10s valF1 %.2f (%d B weights)\n",
			m.Name, m.Arch, m.ValF1, m.WeightBytes)
	}

	downloaded, err := client.FetchBundle(ctx)
	if err != nil {
		return err
	}
	fmt.Println("[device] bundle downloaded; going offline")
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	fmt.Println("[cloud] repository shut down — no cloud from here on")

	// Fully offline inference with the downloaded models.
	rt, err := core.NewRuntime(downloaded, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		return err
	}
	test := corpus.Frames(synth.Test)
	for _, f := range test {
		if _, err := rt.ProcessFrame(f); err != nil {
			return err
		}
	}
	st := rt.Stats()
	fmt.Printf("[device] offline run: %d frames, F1 %.3f, miss rate %.2f\n",
		st.Frames, st.Detection.F1, st.MissRate)
	return nil
}
