// Modelserver: the cloud↔device split. The "cloud" half profiles a
// bundle and serves it over HTTP; the "device" half inspects the
// manifest, downloads the bundle once, drops the connection, and runs
// fully offline — the deployment story of the paper's Fig. 2. The
// offline run is instrumented: the device exposes /metrics locally and
// a dashboard goroutine polls it, printing the same one-line summary an
// operator would scrape in production.
//
//	go run ./examples/modelserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/repo"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 5

	// --- cloud side -------------------------------------------------
	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.3))
	fmt.Println("[cloud] profiling bundle...")
	bundle, err := core.Profile(corpus, core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 20},
		Repertoire: scene.RepertoireConfig{
			N: 8, Delta: 0.05, MaxK: 6,
			Train: detect.TrainConfig{Epochs: 15},
		},
		Sampling: sampling.Config{Kappa: 600, AcceptF1: 0.3},
	})
	if err != nil {
		return err
	}
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("[cloud] serve: %v", err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("[cloud] repository listening at %s\n", baseURL)

	// --- device side ------------------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := &repo.Client{BaseURL: baseURL}

	manifest, err := client.FetchManifest(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("[device] manifest: %d models, %d bundle bytes\n",
		len(manifest.Models), manifest.BundleBytes)
	for _, m := range manifest.Models {
		fmt.Printf("[device]   %-5s %-10s valF1 %.2f (%d B weights)\n",
			m.Name, m.Arch, m.ValF1, m.WeightBytes)
	}

	downloaded, err := client.FetchBundle(ctx)
	if err != nil {
		return err
	}
	fmt.Println("[device] bundle downloaded; going offline")
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return err
	}
	fmt.Println("[cloud] repository shut down — no cloud from here on")

	// Fully offline multi-stream inference with the downloaded models,
	// instrumented: the registry backs a local /metrics endpoint and the
	// dashboard below consumes only that scrape — nothing reads the
	// runtime's in-process stats, exactly like an external operator.
	const streams = 2
	reg := telemetry.NewRegistry()
	m, err := core.NewMultiRuntime(downloaded, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: 4,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	metricsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	metricsSrv := &http.Server{Handler: telemetry.MetricsHandler(reg), ReadHeaderTimeout: 5 * time.Second}
	go metricsSrv.Serve(metricsLn)
	defer metricsSrv.Close()
	metricsURL := "http://" + metricsLn.Addr().String() + "/metrics"
	fmt.Printf("[device] serving /metrics at %s\n", metricsURL)

	// Deal the test frames round-robin across the streams.
	test := corpus.Frames(synth.Test)
	frameSets := make([][]*synth.Frame, streams)
	for i, f := range test {
		frameSets[i%streams] = append(frameSets[i%streams], f)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if line, err := dashboard(metricsURL); err == nil {
					fmt.Println(line)
				}
			}
		}
	}()

	var runErr error
	if _, err := m.ProcessStreams(frameSets, nil); err != nil {
		runErr = err
	}
	close(done)
	wg.Wait()
	if runErr != nil {
		return runErr
	}

	// Final dashboard line from the settled counters, then the in-process
	// view for comparison.
	line, err := dashboard(metricsURL)
	if err != nil {
		return err
	}
	fmt.Println(line)
	st := m.Stats()
	fmt.Printf("[device] offline run: %d frames, F1 %.3f, miss rate %.2f\n",
		st.Frames, st.Detection.F1, st.MissRate)
	return nil
}

// dashboard scrapes url and renders the operator one-liner: stream
// count, frames processed, p95 frame latency (estimated from the
// scraped histogram buckets) and degraded-frame count.
func dashboard(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	series, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return "", err
	}
	streams, _ := telemetry.SeriesValue(series, "anole_core_streams")
	frames, _ := telemetry.SeriesValue(series, "anole_core_frames_total")
	degraded, _ := telemetry.SeriesValue(series, "anole_core_degraded_frames_total")
	p95, _ := telemetry.ScrapedQuantile(series, "anole_core_frame_latency_seconds", 0.95)
	return fmt.Sprintf("[dash]   streams %.0f | frames %.0f | p95 frame latency %s | degraded %.0f",
		streams, frames, time.Duration(p95*float64(time.Second)).Round(10*time.Microsecond), degraded), nil
}
