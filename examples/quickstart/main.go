// Quickstart: the smallest end-to-end Anole pipeline.
//
// It builds a small synthetic driving corpus, runs Offline Scene
// Profiling (scene encoder → Algorithm 1 repertoire → Thompson sampling →
// decision model), then streams test frames through the Online Model
// Inference loop and prints what the scheme did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 42

	// 1. A synthetic driving world and its clip corpus (reduced scale so
	//    the example finishes in seconds).
	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.3))
	fmt.Printf("corpus: %d clips, %d frames\n", len(corpus.Clips), corpus.TotalFrames())

	// 2. Offline Scene Profiling on the cloud side.
	cfg := core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 20},
		Repertoire: scene.RepertoireConfig{
			N:     8,
			Delta: 0.05,
			MaxK:  6,
			Train: detect.TrainConfig{Epochs: 20},
		},
		Sampling: sampling.Config{Kappa: 600, AcceptF1: 0.3},
	}
	bundle, err := core.Profile(corpus, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("profiled a repertoire of %d compressed models:\n", bundle.NumModels())
	for _, info := range bundle.Infos {
		fmt.Printf("  %-5s covers %2d scenes (val F1 %.2f)\n", info.Name, len(info.TrainScenes), info.ValF1)
	}

	// 3. Online Model Inference on the device side.
	rt, err := core.NewRuntime(bundle, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		return err
	}
	test := corpus.Frames(synth.Test)
	for i, f := range test {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			return err
		}
		if i < 5 {
			fmt.Printf("frame %d (%s): model %s, confidence %.2f, F1 %.2f\n",
				i, f.Scene, bundle.Detectors[res.Used].Name, res.Confidence, res.Metrics.F1)
		}
	}
	st := rt.Stats()
	fmt.Printf("\nprocessed %d frames: overall F1 %.3f, %d model switches, cache miss rate %.2f\n",
		st.Frames, st.Detection.F1, st.Switches, st.MissRate)
	return nil
}
