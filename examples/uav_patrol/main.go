// UAV patrol: the paper's motivating scenario. A drone patrols a city
// and its camera crosses scene boundaries rapidly — urban daylight, a
// highway stretch, a tunnel, nightfall. The example profiles Anole and
// the two single-model baselines (SDM, SSM) on the same corpus, then
// flies a patrol whose scene changes every few seconds and compares the
// three methods segment by segment.
//
//	go run ./examples/uav_patrol
package main

import (
	"fmt"
	"log"

	"anole/internal/baselines"
	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// patrolLeg is one stretch of the flight plan with a fixed scene.
type patrolLeg struct {
	name   string
	scene  synth.Scene
	frames int
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7

	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.4))
	train := corpus.Frames(synth.Train)
	val := corpus.Frames(synth.Val)

	fmt.Println("training Anole and baselines on the shared corpus...")
	bundle, err := core.Profile(corpus, core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 25},
		Repertoire: scene.RepertoireConfig{
			N: 10, Delta: 0.05, MaxK: 7,
			Train: detect.TrainConfig{Epochs: 25},
		},
		Sampling: sampling.Config{Kappa: 900, AcceptF1: 0.35},
	})
	if err != nil {
		return err
	}
	rng := xrand.New(seed + 1)
	sdm, err := baselines.TrainSDM(train, val, detect.TrainConfig{Epochs: 20, RNG: rng.Split(1)})
	if err != nil {
		return err
	}
	ssm, err := baselines.TrainSSM(train, val, detect.TrainConfig{Epochs: 20, RNG: rng.Split(2)})
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(bundle, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		return err
	}

	plan := []patrolLeg{
		{"downtown, noon", synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}, 80},
		{"elevated highway", synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Daytime}, 60},
		{"river tunnel", synth.Scene{Weather: synth.Clear, Location: synth.Tunnel, Time: synth.Daytime}, 50},
		{"residential, dusk", synth.Scene{Weather: synth.Overcast, Location: synth.Residential, Time: synth.DawnDusk}, 60},
		{"downtown, night", synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Night}, 80},
		{"rainy bridge, night", synth.Scene{Weather: synth.Rainy, Location: synth.Bridge, Time: synth.Night}, 50},
	}

	fmt.Printf("\n%-22s %-8s %-8s %-8s %-14s\n", "patrol leg", "Anole", "SDM", "SSM", "Anole's model")
	var totAnole, totSDM, totSSM stats.PRF1
	flightRNG := xrand.New(seed + 2)
	for _, leg := range plan {
		var legAnole, legSDM, legSSM stats.PRF1
		used := make(map[string]int)
		for i := 0; i < leg.frames; i++ {
			f := world.GenerateFrame(leg.scene, 1, flightRNG)
			res, err := rt.ProcessFrame(f)
			if err != nil {
				return err
			}
			legAnole = legAnole.Add(res.Metrics)
			used[bundle.Detectors[res.Used].Name]++
			legSDM = legSDM.Add(baselines.EvaluateFrame(sdm, f))
			legSSM = legSSM.Add(baselines.EvaluateFrame(ssm, f))
		}
		totAnole = totAnole.Add(legAnole)
		totSDM = totSDM.Add(legSDM)
		totSSM = totSSM.Add(legSSM)
		fmt.Printf("%-22s %-8.3f %-8.3f %-8.3f mostly %s\n",
			leg.name, legAnole.F1, legSDM.F1, legSSM.F1, modal(used))
	}
	fmt.Printf("%-22s %-8.3f %-8.3f %-8.3f\n", "whole patrol", totAnole.F1, totSDM.F1, totSSM.F1)

	st := rt.Stats()
	fmt.Printf("\nAnole switched models %d times (mean leg-on-one-model %.0f frames), cache miss rate %.2f\n",
		st.Switches, st.MeanSceneDuration(), st.MissRate)
	return nil
}

// modal returns the most frequent key of a non-empty count map.
func modal(counts map[string]int) string {
	best, bestN := "", -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}
