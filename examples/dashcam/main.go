// Dashcam: continuous object detection on a vehicle camera, with the
// full on-device accounting the paper reports — per-frame latency
// including cold starts and cache refills, GPU memory, power draw at a
// chosen Jetson TX2 NX power mode, and the cache's hit/miss behavior as
// the drive crosses scenes.
//
//	go run ./examples/dashcam
package main

import (
	"fmt"
	"log"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/device"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 99

	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.35))

	fmt.Println("profiling the model repertoire...")
	bundle, err := core.Profile(corpus, core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 25},
		Repertoire: scene.RepertoireConfig{
			N: 10, Delta: 0.05, MaxK: 7,
			Train: detect.TrainConfig{Epochs: 20},
		},
		Sampling: sampling.Config{Kappa: 800, AcceptF1: 0.35},
	})
	if err != nil {
		return err
	}

	// Jetson TX2 NX at the 15 W power mode, with room for three
	// compressed models in GPU memory.
	sim, err := device.NewSimulatorAtMode(device.JetsonTX2NX, 2)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(bundle, core.RuntimeConfig{CacheSlots: 3, Device: sim})
	if err != nil {
		return err
	}

	// One long drive: an SHD-like clip (Shanghai highways, tunnels,
	// nightfall) streamed at 30 FPS.
	drive := synth.DefaultProfiles(1)[2]
	drive.FramesPerClip = 400
	clip := world.GenerateClip(drive, 1, xrand.NewLabeled(seed, "drive"))

	const framePeriod = 33300 * time.Microsecond
	fmt.Printf("\ndriving %d frames on %s @ %s\n", len(clip.Frames), sim.Profile().Name, sim.Mode().Name)
	fmt.Printf("%-8s %-26s %-10s %-12s %-8s\n", "frame", "scene", "model", "latency", "note")
	for i, f := range clip.Frames {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			return err
		}
		note := ""
		if !res.Hit {
			note = "cache miss"
		}
		if res.Switched {
			note = "scene switch -> " + bundle.Detectors[res.Desired].Name
		}
		// Print the first frames and every eventful one.
		if i < 3 || note != "" {
			fmt.Printf("%-8d %-26s %-10s %-12s %-8s\n",
				i, f.Scene, bundle.Detectors[res.Used].Name,
				res.Latency.Round(100*time.Microsecond), note)
		}
		sim.Idle(framePeriod - res.Latency)
	}

	st := rt.Stats()
	fmt.Printf("\n--- drive report ---\n")
	fmt.Printf("detection F1 %.3f over %d frames\n", st.Detection.F1, st.Frames)
	fmt.Printf("model switches %d, mean scene duration %.1f frames\n", st.Switches, st.MeanSceneDuration())
	fmt.Printf("cache: %d hits / %d misses (%.1f%% miss), %d evictions\n",
		st.Cache.Hits, st.Cache.Misses, 100*st.MissRate, st.Cache.Evictions)
	fmt.Printf("latency: mean %.1f ms/frame (first frame pays the model load)\n",
		float64(st.TotalLatency.Microseconds())/1e3/float64(st.Frames))
	fmt.Printf("power: %.2f W average (%s budget %.0f W), energy %.1f J\n",
		sim.AveragePowerW(), sim.Mode().Name, sim.Mode().BudgetW, sim.EnergyJ())
	fmt.Printf("GPU memory: %.0f MB resident, %.0f MB peak of %.0f MB\n",
		sim.ResidentMemoryMB(), sim.PeakMemoryMB(), sim.Profile().GPUMemoryMB)
	return nil
}
