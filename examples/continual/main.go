// Continual adaptation: the paper's remedy for samples outside every
// model's distribution (problem case 3, §II-B), end to end.
//
// A delivery drone profiled on city traffic is redeployed to a scene its
// repertoire never saw. The runtime's calibrated novelty score flags the
// unfamiliar frames; on the next depot sync the cloud trains a new
// specialist from the flagged set and retrains the decision head; the
// expanded bundle handles the scene.
//
//	go run ./examples/continual
package main

import (
	"fmt"
	"log"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 606

	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(0.3))
	fmt.Println("profiling on the city corpus...")
	bundle, err := core.Profile(corpus, core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 20},
		Repertoire: scene.RepertoireConfig{
			N: 8, Delta: 0.05, MaxK: 6,
			Train: detect.TrainConfig{Epochs: 20},
		},
		Sampling: sampling.Config{Kappa: 700, AcceptF1: 0.3},
	})
	if err != nil {
		return err
	}
	fmt.Printf("repertoire: %d models, novelty calibrated at scale %.3f\n",
		bundle.NumModels(), bundle.NoveltyScale)

	// Find a scene the training corpus never visited.
	known := make(map[int]bool)
	for _, idx := range bundle.Encoder.ClassToScene {
		known[idx] = true
	}
	var novel synth.Scene
	for idx := 0; idx < synth.NumScenes; idx++ {
		if !known[idx] {
			novel = synth.SceneFromIndex(idx)
			break
		}
	}
	fmt.Printf("redeploying into an unseen scene: %s\n\n", novel)

	// First sortie: the runtime flags what it does not recognize.
	rt, err := core.NewRuntime(bundle, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		return err
	}
	buffer, err := core.NewUncertaintyBuffer(1.5, 200)
	if err != nil {
		return err
	}
	rng := xrand.New(seed + 1)
	var firstSortie stats.PRF1
	for i := 0; i < 120; i++ {
		f := world.GenerateFrame(novel, 1, rng)
		res, err := rt.ProcessFrame(f)
		if err != nil {
			return err
		}
		firstSortie = firstSortie.Add(res.Metrics)
		buffer.Observe(f, res)
	}
	fmt.Printf("first sortie: F1 %.3f, %.0f%% of frames flagged as novel (%d buffered)\n",
		firstSortie.F1, 100*buffer.FlagRate(), buffer.Len())

	// Depot sync: the cloud expands the repertoire from the buffer.
	fmt.Println("depot sync: training a new specialist from the flagged frames...")
	expanded, err := core.ExpandRepertoire(bundle, buffer.Frames(), corpus.Frames(synth.Train), core.ExpandConfig{
		Seed:     seed + 2,
		Train:    detect.TrainConfig{Epochs: 25},
		Sampling: sampling.Config{Kappa: 500, AcceptF1: 0.3},
	})
	if err != nil {
		return err
	}
	last := expanded.Infos[len(expanded.Infos)-1]
	fmt.Printf("expanded to %d models; %s covers the new scene (val F1 %.3f)\n",
		expanded.NumModels(), last.Name, last.ValF1)

	// Second sortie with the expanded bundle.
	rt2, err := core.NewRuntime(expanded, core.RuntimeConfig{CacheSlots: 4})
	if err != nil {
		return err
	}
	buffer2, err := core.NewUncertaintyBuffer(1.5, 200)
	if err != nil {
		return err
	}
	var secondSortie stats.PRF1
	usedNew := 0
	for i := 0; i < 120; i++ {
		f := world.GenerateFrame(novel, 1, rng)
		res, err := rt2.ProcessFrame(f)
		if err != nil {
			return err
		}
		secondSortie = secondSortie.Add(res.Metrics)
		buffer2.Observe(f, res)
		if expanded.Detectors[res.Used].Name == last.Name {
			usedNew++
		}
	}
	fmt.Printf("second sortie: F1 %.3f (was %.3f), new specialist served %d/120 frames\n",
		secondSortie.F1, firstSortie.F1, usedNew)
	fmt.Printf("novelty flags after expansion: %.0f%% (scene is now known)\n",
		100*buffer2.FlagRate())
	return nil
}
