package anole_test

// Multi-stream runtime benchmarks: N independent frame streams
// multiplexed over one shared sharded model cache (core.MultiRuntime).
// The sweep shows how cache contention moves with streams × slots; the
// vs-sequential benchmark reports the simulated-device speedup of
// serving four streams concurrently instead of back-to-back, which must
// clear 1.5x for the multiplexing to pay for its contention.

import (
	"fmt"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/synth"
)

// mustSim builds a simulator for a known-good registry profile.
func mustSim(p device.Profile) *device.Simulator {
	sim, err := device.NewSimulator(p)
	if err != nil {
		panic(err)
	}
	return sim
}

// dealStreams deals the lab's test frames round-robin into n streams of
// perStream frames each, wrapping around the fixture when it is shorter
// than the demand. Frames are read-only inputs, so streams may share
// them.
func dealStreams(b *testing.B, n, perStream int) [][]*synth.Frame {
	b.Helper()
	frames := lab(b).Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		b.Fatal("lab has no test frames")
	}
	streams := make([][]*synth.Frame, n)
	for s := range streams {
		streams[s] = make([]*synth.Frame, perStream)
		for i := range streams[s] {
			streams[s][i] = frames[(s*perStream+i)%len(frames)]
		}
	}
	return streams
}

// BenchmarkMultiStream_CacheSweep crosses stream count with cache
// capacity. Reported metrics: wall-clock aggregate throughput on the
// host, simulated aggregate throughput on the modeled device (streams
// progress concurrently, so makespan is the slowest stream), the
// shared cache's miss rate — the contention signal — and the resident
// model bytes of the shared cache. Streams share one frozen bundle
// (no per-stream clones), so resident-bytes depends on slots only:
// it is flat across the streams axis.
func BenchmarkMultiStream_CacheSweep(b *testing.B) {
	const perStream = 100
	for _, streams := range []int{1, 2, 4} {
		for _, slots := range []int{2, 5} {
			b.Run(fmt.Sprintf("streams=%d/slots=%d", streams, slots), func(b *testing.B) {
				l := lab(b)
				inputs := dealStreams(b, streams, perStream)
				var simFPS, missRate, residentBytes float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mrt, err := core.NewMultiRuntime(l.Bundle, core.MultiRuntimeConfig{
						Streams:    streams,
						CacheSlots: slots,
						Device:     &device.JetsonTX2NX,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := mrt.ProcessStreams(inputs, nil); err != nil {
						b.Fatal(err)
					}
					st := mrt.Stats()
					missRate = st.MissRate
					residentBytes = float64(mrt.Cache().BytesUsed())
					if ms := mrt.SimulatedMakespan().Seconds(); ms > 0 {
						simFPS = float64(st.Frames) / ms
					}
				}
				wall := b.Elapsed().Seconds()
				if wall > 0 {
					b.ReportMetric(float64(streams*perStream*b.N)/wall, "frames/s-wall")
				}
				b.ReportMetric(simFPS, "frames/s-simulated")
				b.ReportMetric(missRate, "miss-rate")
				b.ReportMetric(residentBytes, "resident-bytes")
			})
		}
	}
}

// BenchmarkMultiStream_BatchCurve is the streams-vs-throughput curve of
// the batched event loop: stream counts from 64 to 1024, batching on
// and off, all against a wide-open pre-warmed cache so the curve
// isolates execution strategy from cache contention. Reported metrics:
// wall-clock per-frame latency and aggregate throughput on the host.
// Batching amortizes kernel dispatch over the whole tick (one GEMM per
// layer instead of one GEMV per stream), so ns/frame should grow
// sublinearly from 64 to 1024 streams while the unbatched loop pays
// per-frame overhead throughout.
func BenchmarkMultiStream_BatchCurve(b *testing.B) {
	const perStream = 8
	for _, streams := range []int{64, 256, 1024} {
		for _, batch := range []bool{false, true} {
			b.Run(fmt.Sprintf("streams=%d/batch=%v", streams, batch), func(b *testing.B) {
				l := lab(b)
				inputs := dealStreams(b, streams, perStream)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mrt, err := core.NewMultiRuntime(l.Bundle, core.MultiRuntimeConfig{
						Streams:    streams,
						CacheSlots: l.Bundle.NumModels(),
						Batch:      batch,
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, det := range l.Bundle.Detectors {
						if _, _, err := mrt.Cache().Request(det.Name, 1); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := mrt.ProcessStreams(inputs, nil); err != nil {
						b.Fatal(err)
					}
					mrt.Close()
				}
				frames := float64(streams * perStream * b.N)
				wall := b.Elapsed().Seconds()
				if wall > 0 {
					b.ReportMetric(wall*1e9/frames, "ns/frame")
					b.ReportMetric(frames/wall, "frames/s-wall")
				}
			})
		}
	}
}

// BenchmarkMultiStream_VsSequential compares four streams served
// concurrently by one MultiRuntime against the same four streams run
// back-to-back through fresh single-stream Runtimes on one device. The
// sequential makespan is the sum of per-run simulated latency; the
// concurrent makespan is the slowest stream. simulated-speedup is their
// ratio and must exceed 1.5x — cache contention (shared slots, shared
// eviction pressure) is what keeps it below the ideal 4x.
func BenchmarkMultiStream_VsSequential(b *testing.B) {
	const streams, perStream, slots = 4, 100, 5
	l := lab(b)
	inputs := dealStreams(b, streams, perStream)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sequential time.Duration
		for s := 0; s < streams; s++ {
			sim := mustSim(device.JetsonTX2NX)
			rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: slots, Device: sim})
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range inputs[s] {
				if _, err := rt.ProcessFrame(f); err != nil {
					b.Fatal(err)
				}
			}
			sequential += rt.Stats().TotalLatency
		}

		mrt, err := core.NewMultiRuntime(l.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: slots,
			Device:     &device.JetsonTX2NX,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mrt.ProcessStreams(inputs, nil); err != nil {
			b.Fatal(err)
		}
		concurrent := mrt.SimulatedMakespan()
		if concurrent > 0 {
			speedup = sequential.Seconds() / concurrent.Seconds()
		}
	}
	b.ReportMetric(speedup, "simulated-speedup")
}
