package anole_test

// Chaos evaluation: the fault-injected device↔cloud path behind
// DESIGN.md's "Failure model & degraded mode" section. The regression
// tests drive the same cyclic scene workload as bench_prefetch_test.go
// over a link wrapped in a seeded fault injector, and assert the
// resilience contract: every frame is served (fallbacks counted, none
// dropped), corrupted payloads are quarantined before any cache
// admission, and recovery to the decided model after an outage is
// bounded by the degraded-mode backoff cap. The benchmark sweeps outage
// rate × corruption rate × breaker on/off.
//
// CI runs the tests under -race across a fixed seed matrix via
// ANOLE_CHAOS_SEED; every assertion below is seed-independent (the
// fault schedule changes, the contract does not).

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"anole/internal/breaker"
	"anole/internal/core"
	"anole/internal/faults"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// chaosSeed is the fault-schedule seed, overridable so CI can matrix
// over several schedules.
func chaosSeed() uint64 {
	if v := os.Getenv("ANOLE_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return 7
}

// chaosRuntime wires a runtime to a degraded-locked link wrapped in a
// fault injector, with the demand path failing fast during outages so
// degraded mode engages instead of freezing frames.
func chaosRuntime(tb testing.TB, b *core.Bundle, net netsim.Config, slots, topK int, fcfg faults.Config, withBreaker bool) (*core.Runtime, *faults.Link, *prefetch.LinkFetcher) {
	tb.Helper()
	link, err := netsim.NewLink(net, xrand.New(fcfg.Seed))
	if err != nil {
		tb.Fatal(err)
	}
	flink := faults.WrapLink(link, fcfg)
	lf, err := prefetch.NewLinkFetcher(flink, core.PrefetchModels(b), prefetch.DefaultFrameInterval)
	if err != nil {
		tb.Fatal(err)
	}
	lf.SetDemandDownLimit(0)
	pfCfg := &prefetch.Config{Fetcher: lf, TopK: topK}
	if withBreaker {
		pfCfg.Breaker = breaker.New(breaker.Config{
			FailureThreshold: 5,
			Cooldown:         20 * lf.Interval(),
			Now:              lf.Now,
		})
	}
	rt, err := core.NewRuntime(b, core.RuntimeConfig{
		CacheSlots:          slots,
		Prefetch:            pfCfg,
		DegradedRetryFrames: 2,
		DegradedRetryCap:    16,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rt, flink, lf
}

// TestChaosServesEveryFrame is the resilience acceptance check: at a
// 30% per-frame outage rate and 5% transfer corruption on the degraded
// link, 100% of frames must still be served — by the decided model or a
// counted fallback — and no corrupted payload may reach the cache.
func TestChaosServesEveryFrame(t *testing.T) {
	fx := testutil.Shared(t)
	const (
		slots    = 2
		blockLen = 10
		cycles   = 10
	)
	frames := fx.Corpus.Frames(synth.Test)
	workload := blockWorkload(t, fx.Bundle, frames, slots+1, blockLen, cycles)
	net := lockedLinkConfig(core.PrefetchModels(fx.Bundle), netsim.Degraded, 6, prefetch.DefaultFrameInterval)

	rt, flink, lf := chaosRuntime(t, fx.Bundle, net, slots, 2, faults.Config{
		Seed:        chaosSeed(),
		GraceSteps:  2, // the cold-start fetch has no fallback
		OutageRate:  0.3,
		CorruptRate: 0.05,
	}, true)
	sched := rt.Prefetcher()
	defer rt.Close()

	served := 0
	for i, f := range workload {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatalf("frame %d dropped: %v", i, err)
		}
		if res.Used < 0 {
			t.Fatalf("frame %d served by no model", i)
		}
		served++
	}
	rt.Close()
	if served != len(workload) {
		t.Fatalf("served %d of %d frames", served, len(workload))
	}

	st := rt.Stats()
	fst := flink.Stats()
	lst := lf.Stats()
	ps := sched.Stats()
	if fst.Outages == 0 {
		t.Fatalf("chaos never bit: %+v", fst)
	}
	if st.DegradedFrames == 0 {
		t.Fatal("no degraded frames across a 30 percent outage run")
	}
	if st.FallbackServed < st.DegradedFrames {
		t.Fatalf("fallback served %d < degraded %d: every degraded frame is a fallback",
			st.FallbackServed, st.DegradedFrames)
	}
	// A degraded frame is never also a decided-model frame, so the two
	// populations partition the run: served = decided + fallback.
	if st.DegradedFrames > st.Frames {
		t.Fatalf("degraded %d exceeds frames %d", st.DegradedFrames, st.Frames)
	}
	// Quarantine invariant: every cache prefetch admission corresponds to
	// a clean completed background transfer — corrupted arrivals fail the
	// fetch instead of completing it, so they can never be admitted. (The
	// cache may refuse a completion that raced a demand fetch, so the
	// bound is one-sided.)
	if st.Cache.Prefetches > ps.Completed {
		t.Fatalf("cache admitted %d prefetches but only %d background transfers completed cleanly",
			st.Cache.Prefetches, ps.Completed)
	}
	if lst.Corrupted > 0 && lst.Transfers == 0 {
		t.Fatal("all transfers corrupted yet the run survived without any clean bytes")
	}
	t.Logf("chaos seed %d: %d frames, %d degraded, %d fallback-served, %d outages (%d steps), %d corrupted, %d quarantined, breaker opens %d",
		chaosSeed(), st.Frames, st.DegradedFrames, st.FallbackServed,
		fst.Outages, fst.OutageSteps, lst.Corrupted, lst.Quarantined, ps.BreakerOpens)
}

// TestChaosCorruptionIsQuarantined turns corruption up to certainty
// levels and checks the quarantine path end to end: corrupted demand
// payloads are refetched (never returned), corrupted background
// payloads fail the prefetch (never admitted).
func TestChaosCorruptionIsQuarantined(t *testing.T) {
	fx := testutil.Shared(t)
	const slots = 2
	frames := fx.Corpus.Frames(synth.Test)
	workload := blockWorkload(t, fx.Bundle, frames, slots+1, 10, 6)
	net := lockedLinkConfig(core.PrefetchModels(fx.Bundle), netsim.Degraded, 6, prefetch.DefaultFrameInterval)

	rt, _, lf := chaosRuntime(t, fx.Bundle, net, slots, 2, faults.Config{
		Seed:        chaosSeed(),
		GraceSteps:  2,
		CorruptRate: 0.5,
	}, false)
	sched := rt.Prefetcher()
	defer rt.Close()
	for i, f := range workload {
		if _, err := rt.ProcessFrame(f); err != nil {
			t.Fatalf("frame %d dropped: %v", i, err)
		}
	}
	rt.Close()
	st := rt.Stats()
	lst := lf.Stats()
	ps := sched.Stats()
	if lst.Corrupted == 0 {
		t.Fatal("50% corruption never bit")
	}
	if lst.Quarantined == 0 {
		t.Fatal("no demand payload was quarantined and refetched")
	}
	if st.Cache.Prefetches > ps.Completed {
		t.Fatalf("cache admitted %d prefetches, clean completions %d", st.Cache.Prefetches, ps.Completed)
	}
}

// TestChaosRecoveryBounded places scripted outages at known frames and
// asserts the mean recovery — frames from link restoration to the
// decided model serving again — stays within the degraded-mode backoff
// cap (16 frames here) plus the probe frame. Fully deterministic: the
// injector has no random rates, outages come from ForceOutage.
func TestChaosRecoveryBounded(t *testing.T) {
	fx := testutil.Shared(t)
	const (
		slots       = 2
		outageLen   = 30
		outages     = 4
		recoveryCap = 16 + 1
	)
	frames := fx.Corpus.Frames(synth.Test)
	workload := blockWorkload(t, fx.Bundle, frames, slots+1, 8, 40)
	net := lockedLinkConfig(core.PrefetchModels(fx.Bundle), netsim.Degraded, 6, prefetch.DefaultFrameInterval)

	rt, flink, _ := chaosRuntime(t, fx.Bundle, net, slots, 2, faults.Config{Seed: chaosSeed()}, true)
	defer rt.Close()

	next := 0
	serve := func(n int) {
		t.Helper()
		for i := 0; i < n && next < len(workload); i++ {
			if _, err := rt.ProcessFrame(workload[next]); err != nil {
				t.Fatalf("frame %d dropped: %v", next, err)
			}
			next++
		}
	}
	recover := func() int {
		t.Helper()
		for i := 0; next < len(workload); i++ {
			res, err := rt.ProcessFrame(workload[next])
			if err != nil {
				t.Fatalf("frame %d dropped: %v", next, err)
			}
			next++
			if !res.Degraded && res.Used == res.Desired {
				return i
			}
		}
		t.Fatal("workload ended before recovery")
		return -1
	}

	serve(40) // warm up: transition model has seen the cycle
	total := 0
	for o := 0; o < outages; o++ {
		flink.ForceOutage(outageLen)
		serve(outageLen)
		r := recover()
		if r > recoveryCap {
			t.Fatalf("outage %d: recovery took %d frames, want <= %d", o, r, recoveryCap)
		}
		total += r
		serve(30) // settle before the next outage
	}
	mean := float64(total) / float64(outages)
	if mean > float64(recoveryCap) {
		t.Fatalf("mean recovery %.1f frames, want <= %d", mean, recoveryCap)
	}
	if st := rt.Stats(); st.DegradedFrames == 0 {
		t.Fatal("scripted outages never engaged degraded mode")
	}
	t.Logf("mean recovery %.1f frames over %d outages (cap %d)", mean, outages, recoveryCap)
}

// BenchmarkChaosSweep reports degraded-frame rate, fallback rate and
// per-frame stall across outage rate × corruption rate × breaker
// on/off on the degraded-locked link.
func BenchmarkChaosSweep(b *testing.B) {
	l := lab(b)
	frames := l.Corpus.Frames(synth.Test)
	models := core.PrefetchModels(l.Bundle)
	net := lockedLinkConfig(models, netsim.Degraded, 6, prefetch.DefaultFrameInterval)
	const slots = 2
	workload := blockWorkload(b, l.Bundle, frames, slots+1, 10, 8)

	for _, outage := range []float64{0.1, 0.3} {
		for _, corrupt := range []float64{0, 0.05} {
			for _, brk := range []bool{false, true} {
				name := fmt.Sprintf("outage=%.2f/corrupt=%.2f/breaker=%v", outage, corrupt, brk)
				b.Run(name, func(b *testing.B) {
					var st core.RunStats
					for i := 0; i < b.N; i++ {
						rt, _, _ := chaosRuntime(b, l.Bundle, net, slots, 2, faults.Config{
							Seed:        chaosSeed(),
							GraceSteps:  2,
							OutageRate:  outage,
							CorruptRate: corrupt,
						}, brk)
						st = runWorkload(b, rt, workload)
					}
					nf := float64(max(1, st.Frames))
					b.ReportMetric(float64(st.DegradedFrames)/nf, "degraded/frame")
					b.ReportMetric(float64(st.FallbackServed)/nf, "fallback/frame")
					b.ReportMetric(float64(st.FetchStall.Milliseconds())/nf, "stall-ms/frame")
				})
			}
		}
	}
}
