package anole_test

// Heterogeneous-fleet benchmark: 100 streams split across the paper's
// three platforms (40 Jetson Nano, 40 TX2 NX, 20 laptop) multiplex over
// one shared model cache. The benchmark runs the mix twice on the same
// seed — one-size-fits-all full precision, then per-device planning
// (internal/plan) — and reports per-class and fleet-wide p99 latency
// for both. It doubles as the planner's acceptance gate: every frame
// must be served, every stream's planned repertoire must fit its own
// device's memory ceiling, and the planned fleet p99 must beat the
// uniform assignment.

import (
	"fmt"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/plan"
	"anole/internal/slo"
)

const fleetSpec = "nano:40,tx2:40,laptop:20"

// nanoBudget picks a latency budget between the Nano's full-precision
// and q8 per-frame estimates (the planner's own cost model), so the
// planner provably steps the Nano class down to a quantized variant
// while faster classes keep full precision where they can.
func nanoBudget(b *testing.B, bundle *core.Bundle) time.Duration {
	b.Helper()
	var worst int64
	for _, d := range bundle.Detectors {
		if f := d.FrameFLOPs(64); f > worst {
			worst = f
		}
	}
	fp32 := plan.Variant{DecideFLOPs: bundle.Decision.FLOPs(), DetectFLOPs: worst}
	q8 := fp32
	q8.QuantBits = 8
	mode := device.JetsonNano.Modes[device.JetsonNano.DefaultMode]
	dev := plan.Device{
		GFLOPS:             mode.GFLOPS,
		DispatchOverheadMs: device.JetsonNano.DispatchOverheadMs,
	}
	slow, fast := plan.EstimateLatency(dev, fp32), plan.EstimateLatency(dev, q8)
	if fast >= slow {
		b.Fatalf("quantization does not speed up the nano: fp32 %v, q8 %v", slow, fast)
	}
	return (slow + fast) / 2
}

// byteCeiling is a profile's model-cache capacity in sizer units.
func byteCeiling(p device.Profile) int64 {
	return int64(p.GPUMemoryMB * float64(1<<20) / device.BytesScale)
}

func BenchmarkFleet_MixedPlanVsUniform(b *testing.B) {
	const streams, perStream = 100, 6
	l := lab(b)
	inputs := dealStreams(b, streams, perStream)
	fleet, err := device.BuildFleet(fleetSpec, streams, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	budget := nanoBudget(b, l.Bundle)

	run := func(planned bool) (slo.Status, *core.MultiRuntime) {
		eng := slo.NewEngine(slo.Config{
			Now:        func() time.Duration { return 0 },
			LongWindow: time.Hour,
		})
		cfg := core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: 4 * l.Bundle.NumModels(),
			Fleet:      fleet,
			SLO:        eng,
		}
		if planned {
			cfg.Plan = &core.PlanConfig{LatencyBudget: budget}
		}
		mrt, err := core.NewMultiRuntime(l.Bundle, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Pre-warm every stream's resolved repertoire so p99 measures
		// steady-state inference, not first-touch model admission.
		for s := 0; s < streams; s++ {
			for _, det := range mrt.StreamBundle(s).Detectors {
				if _, _, err := mrt.Cache().Request(det.Name, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := mrt.ProcessStreams(inputs, nil); err != nil {
			b.Fatal(err)
		}
		served := 0
		for s := 0; s < streams; s++ {
			served += mrt.StreamStats(s).Frames
		}
		if served != streams*perStream {
			b.Fatalf("served %d of %d offered frames", served, streams*perStream)
		}
		return eng.Status(), mrt
	}

	var uniform, planned slo.Status
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uniformSt, umrt := run(false)
		plannedSt, pmrt := run(true)
		uniform, planned = uniformSt, plannedSt

		if i == 0 {
			// Memory ceilings are a hard constraint: every planned
			// stream's repertoire fits its own device, and every Nano
			// stream stepped down off full precision under the budget.
			for s, a := range fleet {
				var bytes int64
				for _, det := range pmrt.StreamBundle(s).Detectors {
					bytes += det.SizeBytes()
				}
				if ceil := byteCeiling(a.Profile); bytes > ceil {
					b.Fatalf("stream %d (%s): planned repertoire %d bytes over the %d-byte ceiling",
						s, a.Class, bytes, ceil)
				}
				if a.Class == "nano" && pmrt.StreamVariant(s) == "fp32" {
					b.Fatalf("stream %d (nano) kept fp32 under a %v budget", s, budget)
				}
			}
		}
		umrt.Close()
		pmrt.Close()
	}

	if planned.Fleet.LatencyP99Max >= uniform.Fleet.LatencyP99Max {
		b.Fatalf("planned fleet p99 %v not better than one-size-fits-all %v",
			planned.Fleet.LatencyP99Max, uniform.Fleet.LatencyP99Max)
	}
	for _, cs := range planned.Classes {
		b.ReportMetric(1e3*cs.LatencyP99Max.Seconds(), fmt.Sprintf("p99-%s-ms", cs.Class))
	}
	b.ReportMetric(1e3*planned.Fleet.LatencyP99Max.Seconds(), "p99-fleet-planned-ms")
	b.ReportMetric(1e3*uniform.Fleet.LatencyP99Max.Seconds(), "p99-fleet-uniform-ms")
}

// BenchmarkFleet_BatchedMixed drives the same 100-device mix through
// the batched event loop (streams grouped per resolved bundle) and
// reports wall-clock throughput — the heterogeneous companion to
// BenchmarkMultiStream_BatchCurve.
func BenchmarkFleet_BatchedMixed(b *testing.B) {
	const streams, perStream = 100, 6
	l := lab(b)
	inputs := dealStreams(b, streams, perStream)
	fleet, err := device.BuildFleet(fleetSpec, streams, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mrt, err := core.NewMultiRuntime(l.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: l.Bundle.NumModels(),
			Fleet:      fleet,
			Batch:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, det := range l.Bundle.Detectors {
			if _, _, err := mrt.Cache().Request(det.Name, 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := mrt.ProcessStreams(inputs, nil); err != nil {
			b.Fatal(err)
		}
		mrt.Close()
	}
	frames := float64(streams * perStream * b.N)
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric(frames/wall, "frames/s-wall")
	}
}
