package anole_test

// Overload-survival evaluation: the pressure machinery behind DESIGN.md's
// "Overload and recovery" section. The surge test drives a 4× stream
// surge into thermal saturation under a tight frame deadline and asserts
// the survival contract: every offered frame gets exactly one terminal
// verdict (served / downgraded / shed / quarantined), the shed ladder
// engages and is counted in anole_pressure_* metrics, and the p99
// latency of the frames that WERE served stays bounded relative to the
// deadline — overload degrades output, it never degrades the latency of
// what is still emitted. The kill-and-restart test snapshots a running
// fleet's warm state (Markov counts + cache residency manifest) through
// the versioned checkpoint codec, restores it into a fresh process-worth
// of fleet, and asserts recovery: nothing outside the deployed bundle is
// admitted, and the warm restart pays strictly fewer cold misses than a
// cold start over the same traffic. Corrupt checkpoints must cost only
// warmth — error, cold start, never a panic or partial restore.
//
// CI runs these under -race across the ANOLE_CHAOS_SEED matrix; every
// assertion is seed-independent.

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/pressure"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// surgeThermal models a chassis far past its envelope: heat saturates
// within a frame and compute derates to 10% of nominal — the thermal
// half of the surge.
func surgeThermal() *device.ThermalModel {
	return &device.ThermalModel{SustainedW: 0.5, TimeConstant: time.Millisecond, MaxDerate: 0.9}
}

// dealTestStreams deals the fixture's test frames round-robin into n
// streams of perStream frames, starting at offset so disjoint workloads
// can be cut from one corpus.
func dealTestStreams(tb testing.TB, fx testutil.Fixture, n, perStream, offset int) [][]*synth.Frame {
	tb.Helper()
	frames := fx.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		tb.Fatal("fixture has no test frames")
	}
	streams := make([][]*synth.Frame, n)
	for s := range streams {
		streams[s] = make([]*synth.Frame, perStream)
		for i := range streams[s] {
			streams[s][i] = frames[(offset+s*perStream+i)%len(frames)]
		}
	}
	return streams
}

// nominalFrameLatency measures the fleet's mean per-frame simulated
// latency with no thermal model and no deadline — the baseline the
// surge deadline is set against.
func nominalFrameLatency(tb testing.TB, fx testutil.Fixture, streams, perStream int) time.Duration {
	tb.Helper()
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: fx.Bundle.NumModels(),
		Device:     &device.JetsonTX2NX,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer mrt.Close()
	if _, err := mrt.ProcessStreams(dealTestStreams(tb, fx, streams, perStream, 0), nil); err != nil {
		tb.Fatal(err)
	}
	st := mrt.Stats()
	if st.Frames == 0 {
		tb.Fatal("baseline served no frames")
	}
	return st.TotalLatency / time.Duration(st.Frames)
}

// surgeOutcome aggregates one surge run for assertions and benchmark
// metrics.
type surgeOutcome struct {
	offered   int
	served    int
	shed      int
	quarFrame int
	p99Served time.Duration
	stats     core.RunStats
	press     *core.PressureStats
	metrics   map[string]float64
}

// runSurge drives surgeStreams streams (a 4× surge over the 2-stream
// baseline the deadline budget assumes) into thermal saturation under
// deadline, and folds every frame's verdict.
func runSurge(tb testing.TB, fx testutil.Fixture, surgeStreams, perStream int, deadline time.Duration) surgeOutcome {
	tb.Helper()
	reg := telemetry.NewRegistry()
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    surgeStreams,
		CacheSlots: fx.Bundle.NumModels(),
		Device:     &device.JetsonTX2NX,
		Thermal:    surgeThermal(),
		Deadline:   deadline,
		Metrics:    reg,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer mrt.Close()
	inputs := dealTestStreams(tb, fx, surgeStreams, perStream, int(chaosSeed()))
	results, err := mrt.ProcessStreams(inputs, nil)
	if err != nil {
		tb.Fatal(err)
	}
	var out surgeOutcome
	var servedLat []time.Duration
	for s := range results {
		for _, res := range results[s] {
			out.offered++
			switch res.Verdict {
			case core.VerdictServed, core.VerdictDowngraded:
				out.served++
				servedLat = append(servedLat, res.Latency)
			case core.VerdictShed:
				out.shed++
			case core.VerdictQuarantined:
				out.quarFrame++
			default:
				tb.Fatalf("stream %d: frame without a terminal verdict: %v", s, res.Verdict)
			}
		}
	}
	if len(servedLat) > 0 {
		sort.Slice(servedLat, func(i, j int) bool { return servedLat[i] < servedLat[j] })
		out.p99Served = servedLat[len(servedLat)*99/100]
	}
	out.stats = mrt.Stats()
	out.press = mrt.PressureStats()
	out.metrics = telemetry.Map(reg)
	return out
}

// TestPressureSurgeEveryFrameHasVerdict is the admission-control
// acceptance check: under a 4× surge at thermal saturation with a
// deadline near the nominal frame latency, the ladder engages, every
// offered frame resolves to exactly one terminal verdict, and the p99
// latency of served frames stays within a fixed multiple of the
// deadline.
func TestPressureSurgeEveryFrameHasVerdict(t *testing.T) {
	fx := testutil.Shared(t)
	const baseStreams, surgeStreams, perStream = 2, 8, 150
	nominal := nominalFrameLatency(t, fx, baseStreams, 40)
	deadline := 2 * nominal
	out := runSurge(t, fx, surgeStreams, perStream, deadline)

	if out.offered != surgeStreams*perStream {
		t.Fatalf("offered %d frames, expected %d", out.offered, surgeStreams*perStream)
	}
	if got := out.served + out.shed + out.quarFrame; got != out.offered {
		t.Fatalf("verdicts %d ≠ offered %d: a frame escaped without a terminal verdict", got, out.offered)
	}
	if out.stats.ShedFrames == 0 {
		t.Fatalf("thermal saturation at deadline %v never engaged the shed ladder: %+v", deadline, out.press)
	}
	if out.served == 0 {
		t.Fatal("fleet shed everything: the drop-rung probe must keep serving")
	}
	// Served-frame latency stays bounded: a downgraded frame pays the
	// smallest resident model at worst-case derate, far under the full
	// pipeline at saturation. 8× covers the escalation transient.
	if limit := 8 * deadline; out.p99Served > limit {
		t.Fatalf("p99 served latency %v exceeds %v (deadline %v)", out.p99Served, limit, deadline)
	}
	// The damage is observable: pressure counters partition the sheds by
	// ladder rung.
	ladder := out.metrics["anole_pressure_shed_prefetch_total"] +
		out.metrics["anole_pressure_shed_downgrade_total"] +
		out.metrics["anole_pressure_shed_dropped_total"]
	if ladder == 0 {
		t.Fatalf("shed ladder engaged but anole_pressure_shed_* all zero: %v", out.metrics)
	}
	if out.metrics["anole_pressure_shed_dropped_total"] != float64(out.stats.ShedFrames) {
		t.Fatalf("dropped metric %v ≠ ShedFrames %d", out.metrics["anole_pressure_shed_dropped_total"], out.stats.ShedFrames)
	}
	t.Logf("seed %d: offered %d served %d (p99 %v, deadline %v) shed %d downgraded %d quarantined %d, level %s rung %s",
		chaosSeed(), out.offered, out.served, out.p99Served, deadline,
		out.stats.ShedFrames, out.stats.DowngradedServed, out.quarFrame, out.press.Level, out.press.Rung)
}

// TestPressureNominalBatchedBitIdentical pins the PR6 guarantee through
// the pressure machinery: with the deadline generous enough that the
// ladder never leaves ShedNone, a batched pressure-enabled run is
// bit-for-bit identical to the plain unbatched run.
func TestPressureNominalBatchedBitIdentical(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 4, 60
	run := func(batch bool, deadline time.Duration) [][]core.FrameResult {
		mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: 3,
			Device:     &device.JetsonTX2NX,
			Batch:      batch,
			Deadline:   deadline,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer mrt.Close()
		results, err := mrt.ProcessStreams(dealTestStreams(t, fx, streams, perStream, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	// An hour-long deadline is never missed, so the controller stays at
	// ShedNone for the whole run on both arms.
	const lax = time.Hour
	plain := run(false, 0)
	batched := run(true, lax)
	unbatched := run(false, lax)
	for s := range plain {
		for i := range plain[s] {
			if plain[s][i] != batched[s][i] {
				t.Fatalf("stream %d frame %d: batched+pressure diverged from plain:\n%+v\n%+v", s, i, batched[s][i], plain[s][i])
			}
			if plain[s][i] != unbatched[s][i] {
				t.Fatalf("stream %d frame %d: unbatched+pressure diverged from plain:\n%+v\n%+v", s, i, unbatched[s][i], plain[s][i])
			}
		}
	}
}

// linkedFleet builds a multi-stream fleet whose cache sits behind a
// pinned simulated link, so residency costs fetches and cold misses are
// observable.
func linkedFleet(tb testing.TB, fx testutil.Fixture, streams, slots int, seed uint64) *core.MultiRuntime {
	tb.Helper()
	net := lockedLinkConfig(core.PrefetchModels(fx.Bundle), netsim.Good, 4, prefetch.DefaultFrameInterval)
	link, err := netsim.NewLink(net, xrand.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	lf, err := prefetch.NewLinkFetcher(link, core.PrefetchModels(fx.Bundle), prefetch.DefaultFrameInterval)
	if err != nil {
		tb.Fatal(err)
	}
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: slots,
		Device:     &device.JetsonTX2NX,
		Prefetch:   &prefetch.Config{Fetcher: lf, TopK: 2},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return mrt
}

// killRestartWorkload cuts the cyclic scene workload into per-stream
// halves for the kill-and-restart experiment. Two scenes alternate, and
// the cut lands mid-block — a process dies wherever it dies, not at a
// scene boundary — so the model serving at the moment of death is both
// in the checkpoint's residency manifest and the first thing the second
// half demands: the cold-start arm pays for that residency over the
// link, the restored arm does not.
func killRestartWorkload(tb testing.TB, fx testutil.Fixture, streams int) (first, second [][]*synth.Frame) {
	tb.Helper()
	const blockLen = 10
	frames := fx.Corpus.Frames(synth.Test)
	whole := blockWorkload(tb, fx.Bundle, frames, 2, blockLen, 6)
	cut := len(whole)/2 - blockLen/2
	first = make([][]*synth.Frame, streams)
	second = make([][]*synth.Frame, streams)
	for s := 0; s < streams; s++ {
		first[s] = whole[:cut]
		second[s] = whole[cut:]
	}
	return first, second
}

// TestPressureKillRestartRecovery is the crash/restart acceptance
// check: a fleet killed after its first half leaves a checkpoint; the
// restored fleet admits nothing the deployed bundle does not define and
// pays strictly fewer cold misses over the second half than an
// identical cold-started fleet.
func TestPressureKillRestartRecovery(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, slots = 2, 3
	seed := chaosSeed()
	first, second := killRestartWorkload(t, fx, streams)
	path := t.TempDir() + "/warm.ckpt"

	// Fleet A: serve the first half, then "die" — but checkpoint first.
	fleetA := linkedFleet(t, fx, streams, slots, seed)
	if _, err := fleetA.ProcessStreams(first, nil); err != nil {
		t.Fatal(err)
	}
	ckpt := fleetA.CaptureCheckpoint()
	// A hostile manifest entry must never be admitted on restore.
	ckpt.Cache = append(ckpt.Cache, pressure.CacheEntry{Key: "model-not-in-any-bundle", Freq: 99})
	if err := pressure.SaveCheckpoint(path, ckpt); err != nil {
		t.Fatal(err)
	}
	fleetA.Close()

	// Fleet B: fresh process, warm restore, second half.
	fleetB := linkedFleet(t, fx, streams, slots, seed+1)
	loaded, err := pressure.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("reload checkpoint: %v", err)
	}
	warmed, err := fleetB.RestoreCheckpoint(loaded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if warmed == 0 {
		t.Fatal("restore warmed nothing from a fleet that served half a workload")
	}
	known := make(map[string]bool)
	for _, d := range fx.Bundle.Detectors {
		known[d.Name] = true
	}
	for _, key := range fleetB.Cache().Keys() {
		if !known[key] {
			t.Fatalf("restore admitted %q, which the deployed bundle does not define", key)
		}
	}
	if _, err := fleetB.ProcessStreams(second, nil); err != nil {
		t.Fatal(err)
	}
	fleetB.Close()
	warmMisses := fleetB.Stats().ColdMisses

	// Fleet C: identical traffic, cold start.
	fleetC := linkedFleet(t, fx, streams, slots, seed+1)
	if _, err := fleetC.ProcessStreams(second, nil); err != nil {
		t.Fatal(err)
	}
	fleetC.Close()
	coldMisses := fleetC.Stats().ColdMisses

	if coldMisses == 0 {
		t.Fatal("cold fleet paid no cold misses: the workload exercises nothing")
	}
	if warmMisses >= coldMisses {
		t.Fatalf("warm restart paid %d cold misses, cold start %d: restore bought no warmth", warmMisses, coldMisses)
	}
	t.Logf("seed %d: warmed %d models; cold misses warm %d vs cold %d", seed, warmed, warmMisses, coldMisses)
}

// TestPressureCorruptCheckpointColdStart asserts a damaged checkpoint
// costs only warmth: truncation, bit flips and version skew all surface
// as errors (never a panic or a partial restore), and the fleet then
// serves its traffic from a cold start.
func TestPressureCorruptCheckpointColdStart(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, slots = 2, 3
	_, second := killRestartWorkload(t, fx, streams)
	dir := t.TempDir()
	path := dir + "/warm.ckpt"

	fleetA := linkedFleet(t, fx, streams, slots, chaosSeed())
	first, _ := killRestartWorkload(t, fx, streams)
	if _, err := fleetA.ProcessStreams(first, nil); err != nil {
		t.Fatal(err)
	}
	if err := pressure.SaveCheckpoint(path, fleetA.CaptureCheckpoint()); err != nil {
		t.Fatal(err)
	}
	fleetA.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string][]byte{
		"truncated": blob[:len(blob)/2],
		"bitflip":   flipByte(blob, len(blob)/2),
		"skewed":    flipByte(blob, 4), // version field follows the magic
	}
	for name, corrupt := range damage {
		bad := dir + "/" + name + ".ckpt"
		if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := pressure.LoadCheckpoint(bad); err == nil {
			t.Fatalf("%s checkpoint loaded without error", name)
		}
	}

	// The fallback path: no restore happened, the fleet still serves.
	fleetCold := linkedFleet(t, fx, streams, slots, chaosSeed())
	results, err := fleetCold.ProcessStreams(second, nil)
	if err != nil {
		t.Fatalf("cold-start fallback failed to serve: %v", err)
	}
	fleetCold.Close()
	for s := range results {
		for i, res := range results[s] {
			if res.Used < 0 {
				t.Fatalf("stream %d frame %d served by no model after cold start", s, i)
			}
		}
	}
}

// flipByte returns a copy of b with one bit flipped at index i.
func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

// BenchmarkPressureSurge is the CI artifact source: the 4× surge at
// thermal saturation, reporting shed rate, served-frame p99 and
// quarantine counts per configuration.
func BenchmarkPressureSurge(b *testing.B) {
	l := lab(b)
	fx := testutil.Fixture{World: l.World, Corpus: l.Corpus, Bundle: l.Bundle}
	const baseStreams, perStream = 2, 100
	nominal := nominalFrameLatency(b, fx, baseStreams, 40)
	for _, mult := range []int{2, 4} {
		streams := baseStreams * mult
		b.Run(fmt.Sprintf("surge=%dx/streams=%d", mult, streams), func(b *testing.B) {
			var out surgeOutcome
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = runSurge(b, fx, streams, perStream, 2*nominal)
			}
			b.ReportMetric(float64(out.shed)/float64(out.offered), "shed-rate")
			b.ReportMetric(float64(out.stats.DowngradedServed)/float64(out.offered), "downgrade-rate")
			b.ReportMetric(1e3*out.p99Served.Seconds(), "p99-served-ms")
			b.ReportMetric(float64(out.press.Quarantines), "quarantines")
		})
	}
}
