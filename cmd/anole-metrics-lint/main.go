// Command anole-metrics-lint validates a Prometheus text exposition on
// stdin against the repository metric naming scheme: every series under
// the anole_ prefix, inside a known component family, kind-aware
// suffixes (counters _total, gauges bare, histograms carrying a unit),
// no duplicates, and no series without a # TYPE declaration.
//
// CI pipes the live /metrics scrape of anole-server through it, so a
// metric added outside the scheme fails the build rather than landing
// on a dashboard misnamed:
//
//	curl -fsS http://host:port/metrics | anole-metrics-lint
package main

import (
	"fmt"
	"os"

	"anole/internal/telemetry"
)

func main() {
	if err := telemetry.LintText(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "anole-metrics-lint:", err)
		os.Exit(1)
	}
	fmt.Println("metrics scheme ok")
}
