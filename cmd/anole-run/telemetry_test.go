package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/telemetry"
)

// TestRunMetricsAddrMatchesJSONReport is the acceptance check for the
// live debug surface: with -chaos and -metrics-addr, the counters
// scraped from the live /metrics endpoint after the run settles must
// exactly equal the flattened metrics map in the -json report, and the
// /debug/spans dump must agree with the report's span list.
func TestRunMetricsAddrMatchesJSONReport(t *testing.T) {
	path := cheapBundlePathSeed(t, 13)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")

	var (
		scraped   []telemetry.ParsedSeries
		liveSpans []telemetry.Span
		scrapeErr error
	)
	testHookMetricsSettled = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			scrapeErr = err
			return
		}
		defer resp.Body.Close()
		scraped, scrapeErr = telemetry.ParseText(resp.Body)
		if scrapeErr != nil {
			return
		}
		sresp, err := http.Get("http://" + addr + "/debug/spans")
		if err != nil {
			scrapeErr = err
			return
		}
		defer sresp.Body.Close()
		scrapeErr = json.NewDecoder(sresp.Body).Decode(&liveSpans)
	}
	defer func() { testHookMetricsSettled = nil }()

	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-clips", "4", "-frames", "40", "-cache", "2",
		"-chaos", "-outage-rate", "0.4", "-corrupt-rate", "0.1",
		"-breaker-threshold", "2", "-breaker-cooldown", "5",
		"-link-stability", "0.5",
		"-metrics-addr", "127.0.0.1:0", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrapeErr != nil {
		t.Fatalf("scrape: %v", scrapeErr)
	}
	if scraped == nil {
		t.Fatal("settled hook never ran — was the listener started?")
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("report has no metrics map")
	}

	// Every plain counter/gauge in the report must match the live scrape
	// exactly. Histogram quantiles (_p50/_p95/_p99) come from the sample
	// ring, not the text exposition, so only _count and _sum are compared
	// for histograms.
	checked := 0
	for name, want := range rep.Metrics {
		if strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p95") || strings.HasSuffix(name, "_p99") {
			continue
		}
		got, ok := telemetry.SeriesValue(scraped, name)
		if !ok {
			t.Errorf("live /metrics missing %s", name)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: live %v, report %v", name, got, want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d series compared — scrape or report suspiciously small", checked)
	}

	// The structured counters must agree with the registry's view.
	for name, want := range map[string]float64{
		"anole_core_frames_total":              float64(rep.Frames),
		"anole_core_degraded_frames_total":     float64(rep.DegradedFrames),
		"anole_core_fallback_served_total":     float64(rep.FallbackServed),
		"anole_breaker_opens_total":            float64(rep.BreakerOpens),
		"anole_breaker_half_open_probes_total": float64(rep.BreakerHalfOpenProbes),
		"anole_prefetch_cancelled_total":       float64(rep.PrefetchCancelled),
	} {
		if got := rep.Metrics[name]; got != want {
			t.Errorf("report metrics[%s] = %v, structured field %v", name, got, want)
		}
	}

	// The chaos run must actually have exercised the resilience path —
	// the equality above is only meaningful if these counters moved.
	if rep.DegradedFrames == 0 || rep.BreakerOpens == 0 {
		t.Errorf("chaos run too tame: degraded=%d opens=%d", rep.DegradedFrames, rep.BreakerOpens)
	}
	if rep.BreakerHalfOpenProbes == 0 {
		t.Error("no breaker half-open probes recorded")
	}
	if rep.PrefetchCancelled == 0 {
		t.Error("no prefetch cancellations recorded")
	}

	// Spans: the report dump and the live endpoint must agree, and the
	// span clock is the simulated link clock (deterministic, monotone).
	if len(rep.Spans) == 0 {
		t.Fatal("report has no spans")
	}
	if len(liveSpans) != len(rep.Spans) {
		t.Fatalf("live spans %d, report spans %d", len(liveSpans), len(rep.Spans))
	}
	for i := range rep.Spans {
		if liveSpans[i] != rep.Spans[i] {
			t.Fatalf("span %d diverged:\n live %+v\n json %+v", i, liveSpans[i], rep.Spans[i])
		}
	}
	for i := 1; i < len(rep.Spans); i++ {
		if rep.Spans[i].Start < rep.Spans[i-1].Start {
			t.Fatalf("span clock regressed at %d: %v after %v", i, rep.Spans[i].Start, rep.Spans[i-1].Start)
		}
	}

	// The scraped name set must obey the naming scheme with no duplicates
	// (ParseText already rejects duplicate series).
	for _, s := range scraped {
		if !strings.HasPrefix(s.Name, "anole_") && !strings.HasPrefix(s.Name, "go_") {
			t.Errorf("scraped series %q outside the anole_ scheme", s.Name)
		}
	}

	if !strings.Contains(out.String(), "debug: serving /metrics") {
		t.Errorf("output missing debug listener line:\n%s", out.String())
	}
}

// TestRunFullSurfaceScrapeMatchesReport re-asserts the "live scrape ==
// JSON report exactly" invariant over the full current metric surface:
// a multi-stream run with adaptation, deadline shedding, thermal
// throttling, the SLO engine and the flight recorder all on, so the
// anole_adapt_*, anole_pressure_*, anole_slo_* and anole_flight_*
// families join the core/cache/prefetch set, and the scraped exposition
// passes the strict naming-scheme lint end to end.
func TestRunFullSurfaceScrapeMatchesReport(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")

	var (
		scraped   []telemetry.ParsedSeries
		lintErr   error
		scrapeErr error
	)
	testHookMetricsSettled = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			scrapeErr = err
			return
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			scrapeErr = err
			return
		}
		scraped, scrapeErr = telemetry.ParseText(strings.NewReader(buf.String()))
		lintErr = telemetry.LintText(strings.NewReader(buf.String()))
	}
	defer func() { testHookMetricsSettled = nil }()

	err := run(new(strings.Builder), []string{
		"-bundle", path, "-streams", "2", "-clips", "1", "-frames", "120",
		"-cache", "4", "-adapt", "-drift-window", "15", "-canary-frames", "30",
		"-deadline", "60ms", "-thermal", "-slo", "-flight",
		"-metrics-addr", "127.0.0.1:0", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrapeErr != nil {
		t.Fatalf("scrape: %v", scrapeErr)
	}
	if scraped == nil {
		t.Fatal("settled hook never ran — was the listener started?")
	}
	if lintErr != nil {
		t.Fatalf("live exposition fails the scheme lint: %v", lintErr)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if rep.Adapt == nil || rep.SLO == nil || rep.Flight == nil || rep.Pressure == nil {
		t.Fatalf("report missing an observability block: adapt=%v slo=%v flight=%v pressure=%v",
			rep.Adapt != nil, rep.SLO != nil, rep.Flight != nil, rep.Pressure != nil)
	}

	// Every plain counter/gauge in the report must match the live scrape
	// exactly; histogram quantiles come from the sample ring, not the
	// exposition.
	checked := 0
	families := map[string]bool{}
	for name, want := range rep.Metrics {
		rest := strings.TrimPrefix(name, "anole_")
		if i := strings.IndexByte(rest, '_'); i > 0 {
			families[rest[:i]] = true
		}
		if strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p95") || strings.HasSuffix(name, "_p99") {
			continue
		}
		got, ok := telemetry.SeriesValue(scraped, name)
		if !ok {
			t.Errorf("live /metrics missing %s", name)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: live %v, report %v", name, got, want)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d series compared — scrape or report suspiciously small", checked)
	}
	// The full surface means every observability family is present.
	for _, fam := range []string{"core", "modelcache", "adapt", "pressure", "slo", "flight"} {
		if !families[fam] {
			t.Errorf("metric family %q absent from the report (have %v)", fam, families)
		}
	}

	// The families must carry live values consistent with the
	// structured report blocks.
	if got := rep.Metrics["anole_adapt_fleet_generation"]; got != float64(rep.Adapt.FleetGeneration) {
		t.Errorf("fleet generation gauge %v, adapt block %d", got, rep.Adapt.FleetGeneration)
	}
	if got := rep.Metrics["anole_flight_events_total"]; got < float64(rep.Flight.Events) {
		t.Errorf("flight events counter %v below retained %d", got, rep.Flight.Events)
	}
	if got := rep.Metrics["anole_slo_served_fraction"]; got != rep.SLO.Long.ServedFraction {
		t.Errorf("served-fraction gauge %v, slo block %v", got, rep.SLO.Long.ServedFraction)
	}
}

// TestRunJSONReportIncludesFullCounterSet pins the satellite contract:
// a chaos -json report carries breaker half-open probes, prefetch
// cancellations, the flattened registry counter set and the span dump —
// without needing -metrics-addr.
func TestRunJSONReportIncludesFullCounterSet(t *testing.T) {
	path := cheapBundlePathSeed(t, 13)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	err := run(new(strings.Builder), []string{
		"-bundle", path, "-clips", "2", "-frames", "30", "-cache", "2",
		"-chaos", "-outage-rate", "0.4", "-breaker-threshold", "2",
		"-breaker-cooldown", "8", "-link-stability", "0.5",
		"-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"breakerHalfOpenProbes", "prefetchCancelled", "metrics", "spans",
		"anole_core_frames_total", "anole_modelcache_lookups_total",
		"anole_prefetch_issued_total", "anole_breaker_state",
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report JSON missing %q", key)
		}
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["anole_core_frames_total"] != float64(rep.Frames) {
		t.Fatalf("metrics frames %v != report frames %d", rep.Metrics["anole_core_frames_total"], rep.Frames)
	}
	stages := map[string]bool{}
	for _, sp := range rep.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{telemetry.StageDecide, telemetry.StageCache, telemetry.StageFetch, telemetry.StageDetect} {
		if !stages[want] {
			t.Errorf("span dump missing stage %q (have %v)", want, stages)
		}
	}
}

// TestRunMultiStreamMetricsAggregate checks the multi-stream path feeds
// the same shared registry: counters in the report must equal the
// aggregate stats across streams.
func TestRunMultiStreamMetricsAggregate(t *testing.T) {
	path := cheapBundlePathSeed(t, 13)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	err := run(new(strings.Builder), []string{
		"-bundle", path, "-streams", "3", "-clips", "1", "-frames", "20",
		"-cache", "2", "-prefetch", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if want := float64(rep.Frames); rep.Metrics["anole_core_frames_total"] != want {
		t.Fatalf("frames counter %v, want %v", rep.Metrics["anole_core_frames_total"], want)
	}
	if got := rep.Metrics["anole_core_streams"]; got != 3 {
		t.Fatalf("streams gauge %v, want 3", got)
	}
	seen := map[int]bool{}
	for _, sp := range rep.Spans {
		seen[sp.Stream] = true
	}
	if len(seen) != 3 {
		t.Fatalf("spans cover %d streams, want 3 (%v)", len(seen), seen)
	}
}

// TestRunZeroClipReportMarshals pins the zero-frame contract end to
// end: a run with -clips 0 must produce a finite, marshalable report
// (encoding/json fails on NaN, so this also guards MeanSceneDuration
// and the derived rates).
func TestRunZeroClipReportMarshals(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	var out strings.Builder
	if err := run(&out, []string{
		"-bundle", path, "-clips", "0", "-frames", "10", "-cache", "2",
		"-json", jsonPath,
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("zero-frame report is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Frames != 0 {
		t.Fatalf("frames = %d, want 0", rep.Frames)
	}
	for name, v := range map[string]float64{
		"meanSceneDuration": rep.MeanSceneDuration,
		"missRate":          rep.MissRate,
		"f1":                rep.F1,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("zero-frame %s = %v", name, v)
		}
	}
	if !strings.Contains(out.String(), "frames 0") {
		t.Errorf("zero-frame summary garbled:\n%s", out.String())
	}
}
