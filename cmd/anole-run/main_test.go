package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsUnknownDevice(t *testing.T) {
	err := run(io.Discard, []string{"-bundle", "/nonexistent", "-device", "gpu9000"})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRejectsMissingBundle(t *testing.T) {
	err := run(io.Discard, []string{"-bundle", "/nonexistent.bundle"})
	if err == nil || !strings.Contains(err.Error(), "repo") {
		t.Fatalf("expected repo load error, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(io.Discard, []string{"-clips", "notanumber"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}
