package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/repo"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/trace"
	"anole/internal/xrand"
)

func TestRunRejectsUnknownDevice(t *testing.T) {
	err := run(io.Discard, []string{"-bundle", "/nonexistent", "-device", "gpu9000"})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRejectsMissingBundle(t *testing.T) {
	err := run(io.Discard, []string{"-bundle", "/nonexistent.bundle"})
	if err == nil || !strings.Contains(err.Error(), "repo") {
		t.Fatalf("expected repo load error, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(io.Discard, []string{"-clips", "notanumber"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunRejectsBadStreams(t *testing.T) {
	err := run(io.Discard, []string{"-streams", "0"})
	if err == nil || !strings.Contains(err.Error(), "-streams") {
		t.Fatalf("expected streams validation error, got %v", err)
	}
}

// cheapBundlePath saves an untrained but structurally valid bundle whose
// feature dimension matches synth.DefaultConfig, so run() can stream
// generated frames through it without paying for profiling.
func cheapBundlePath(t *testing.T) string {
	return cheapBundlePathSeed(t, 7)
}

// cheapBundlePathSeed is cheapBundlePath with a chosen generator seed:
// the untrained decision head's switching behavior on the default trace
// depends on its random weights, so tests that need scene switches (and
// thus link traffic) pick a seed whose head discriminates between
// frames.
func cheapBundlePathSeed(t *testing.T, seed uint64) string {
	t.Helper()
	featDim := synth.DefaultConfig(1).FeatDim
	rng := xrand.NewLabeled(seed, "anole-run-test-bundle")
	const embedDim, models = 4, 3
	encNet := nn.NewMLP(nn.MLPConfig{
		InDim: synth.FrameFeatureDim(featDim), Hidden: []int{6, embedDim}, OutDim: 2,
	}, rng)
	enc, err := scene.FromParts(encNet.Freeze(), []int{0, 1}, embedDim)
	if err != nil {
		t.Fatal(err)
	}
	head := nn.NewMLP(nn.MLPConfig{InDim: embedDim, Hidden: []int{5}, OutDim: models}, rng)
	dec, err := decision.FromParts(enc, head.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	detectors := make([]*detect.Detector, models)
	infos := make([]core.ModelInfo, models)
	for i := range detectors {
		detectors[i] = detect.NewDetector(fmt.Sprintf("M_%d", i), detect.Compressed, featDim, rng)
		infos[i] = core.ModelInfo{
			Name: detectors[i].Name, Level: i, Cluster: i,
			TrainScenes: []int{i}, ValF1: 0.5,
		}
	}
	b := &core.Bundle{
		Encoder:   enc,
		Decision:  dec,
		Detectors: detectors,
		Infos:     infos,
		FeatDim:   featDim,
	}
	// Calibrate novelty on the two known scenes so drift signals are live
	// (an uncalibrated bundle scores every frame 0).
	world, err := synth.NewWorld(synth.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	crng := xrand.NewLabeled(seed, "anole-run-test-calibrate")
	var cal []*synth.Frame
	for _, idx := range []int{0, 1} {
		for i := 0; i < 20; i++ {
			cal = append(cal, world.GenerateFrame(synth.SceneFromIndex(idx), 1, crng))
		}
	}
	b.CalibrateNovelty(cal)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.bundle")
	if err := repo.SaveFile(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleStream(t *testing.T) {
	path := cheapBundlePath(t)
	var out strings.Builder
	err := run(&out, []string{"-bundle", path, "-clips", "1", "-frames", "12", "-cache", "2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clip 1:", "cache:", "device:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleStreamPrefetchJSON(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-clips", "2", "-frames", "30", "-cache", "2",
		"-prefetch", "-link-stability", "0.9", "-prefetch-budget", "100000000",
		"-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"link: cold misses", "prefetch: issued"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if rep.Frames != 60 {
		t.Fatalf("frames %d, want 60", rep.Frames)
	}
	if rep.ColdMisses == 0 || rep.FetchStallMs <= 0 {
		t.Fatalf("no link activity in report: %+v", rep)
	}
	if rep.Scheduler == nil {
		t.Fatal("report missing scheduler stats")
	}
	if rep.CacheHits+rep.CacheMisses == 0 {
		t.Fatal("report missing cache counters")
	}
}

func TestRunChaosJSON(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-clips", "2", "-frames", "30", "-cache", "2",
		"-chaos", "-outage-rate", "0.4", "-corrupt-rate", "0.1",
		"-breaker-threshold", "2", "-breaker-cooldown", "10",
		"-link-stability", "0.5", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	// -chaos implies -prefetch; every frame must still be processed.
	if rep.Frames != 60 {
		t.Fatalf("frames %d, want 60", rep.Frames)
	}
	if rep.Scheduler == nil {
		t.Fatal("report missing scheduler stats")
	}
	// The counters must be present in the JSON even when zero.
	for _, key := range []string{"degradedFrames", "fallbackServed", "breakerOpens"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report JSON missing %q:\n%s", key, raw)
		}
	}
}

func TestRunJSONToStdout(t *testing.T) {
	path := cheapBundlePath(t)
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-clips", "1", "-frames", "10", "-cache", "2", "-json", "-",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The JSON object is the tail of the output.
	idx := strings.Index(out.String(), "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()[idx:]), &rep); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if rep.Frames != 10 || rep.Scheduler != nil {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestRunMultiStreamPrefetchJSON(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-streams", "2", "-clips", "1", "-frames", "25",
		"-cache", "2", "-prefetch", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "link: cold misses") {
		t.Errorf("output missing link summary:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if rep.Frames != 50 || rep.Scheduler == nil {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.ColdMisses == 0 {
		t.Fatal("no cold misses across streams")
	}
}

func TestRunMultiStream(t *testing.T) {
	path := cheapBundlePath(t)
	tracePath := filepath.Join(t.TempDir(), "run.trace")
	const streams, frames = 3, 15
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-streams", fmt.Sprint(streams),
		"-clips", "1", "-frames", fmt.Sprint(frames),
		"-cache", "2", "-trace", tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		if !strings.Contains(out.String(), fmt.Sprintf("stream %d:", s)) {
			t.Errorf("output missing stream %d line:\n%s", s, out.String())
		}
	}
	for _, want := range []string{"aggregate:", "shared cache:", "simulated makespan"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Every stream must have written a complete, readable trace.
	for s := 0; s < streams; s++ {
		f, err := os.Open(fmt.Sprintf("%s.stream%d", tracePath, s))
		if err != nil {
			t.Fatal(err)
		}
		events, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("stream %d trace: %v", s, err)
		}
		if len(events) != frames {
			t.Errorf("stream %d trace has %d events, want %d", s, len(events), frames)
		}
	}
}

func TestRunAdaptRequiresMultiStream(t *testing.T) {
	err := run(io.Discard, []string{"-bundle", cheapBundlePath(t), "-adapt"})
	if err == nil || !strings.Contains(err.Error(), "-adapt") {
		t.Fatalf("expected -adapt stream validation error, got %v", err)
	}
}

func TestRunAdaptJSON(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-streams", "2", "-clips", "1", "-frames", "90",
		"-cache", "4", "-adapt", "-drift-window", "15", "-canary-frames", "30",
		"-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adapt: stream 0 enters unseen scene", "fleet generation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if rep.Adapt == nil {
		t.Fatalf("report missing adapt block:\n%s", raw)
	}
	if rep.Adapt.FleetGeneration < 1 {
		t.Fatalf("fleet generation %d", rep.Adapt.FleetGeneration)
	}
	// The canary stream spends the whole run in the unseen scene with a
	// calibrated novelty signal, so drift must be detected and reported
	// (this is deterministic for the fixed bundle seed and trace seed).
	if rep.Adapt.DriftEvents == 0 || rep.Adapt.ReportsSent == 0 {
		t.Fatalf("adaptation loop saw no drift: %+v", *rep.Adapt)
	}
	for _, key := range []string{"driftEvents", "reportsSent", "canaryStarts", "fleetGeneration"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report JSON missing %q", key)
		}
	}
}

func TestRunRejectsBadFleetFlags(t *testing.T) {
	cases := map[string][]string{
		"fleet single stream": {"-fleet", "nano:1", "-streams", "1"},
		"plan without fleet":  {"-streams", "2", "-plan"},
		"plan with adapt":     {"-streams", "2", "-fleet", "nano:1,tx2:1", "-plan", "-adapt"},
	}
	for name, args := range cases {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	// A malformed spec fails before any streaming.
	path := cheapBundlePath(t)
	err := run(io.Discard, []string{"-bundle", path, "-streams", "2", "-fleet", "warp9:1"})
	if err == nil || !strings.Contains(err.Error(), "warp9") {
		t.Fatalf("expected unknown-profile error, got %v", err)
	}
}

// TestRunFleetPlanJSON drives a planned mixed fleet end to end with SLO
// evaluation: the summary must carry per-class fleet lines with planner
// variants, and the -json report must contain the "fleet" block, the
// per-class SLO percentiles and the anole_fleet_* / anole_plan_* series.
func TestRunFleetPlanJSON(t *testing.T) {
	path := cheapBundlePath(t)
	jsonPath := filepath.Join(t.TempDir(), "stats.json")
	const streams = 4
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-streams", fmt.Sprint(streams),
		"-clips", "1", "-frames", "20", "-cache", "12",
		"-fleet", "nano:1,tx2:1", "-plan", "-slo", "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet nano (Jetson Nano):", "fleet tx2 (Jetson TX2 NX):", "variants", "slo fleet nano:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if len(rep.Fleet) != 2 {
		t.Fatalf("fleet block %+v, want nano and tx2", rep.Fleet)
	}
	total := 0
	for _, cr := range rep.Fleet {
		total += cr.Streams
		if cr.Frames == 0 || len(cr.Variants) == 0 {
			t.Fatalf("class %s missing frames or variants: %+v", cr.Class, cr)
		}
	}
	if total != streams {
		t.Fatalf("fleet classes cover %d streams, want %d", total, streams)
	}
	if rep.SLO == nil || len(rep.SLO.Classes) != 2 {
		t.Fatalf("slo classes missing: %+v", rep.SLO)
	}
	foundFleetGauge := false
	for name := range rep.Metrics {
		if strings.HasPrefix(name, "anole_fleet_") {
			foundFleetGauge = true
			break
		}
	}
	if !foundFleetGauge {
		t.Fatal("no anole_fleet_* series in metrics")
	}
	if _, ok := rep.Metrics["anole_plan_infeasible_streams"]; !ok {
		t.Fatal("no anole_plan_infeasible_streams gauge in metrics")
	}
}
