package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/flight"
)

// TestRunFlightDumpOnRollback is the seeded-chaos rollback smoke the CI
// observability job replays: with -min-f1-ratio pinned impossibly high
// the retrained candidate can never pass its canary, the forced
// rollback trips the flight recorder, and the -flight-dump artifact on
// disk decodes into a dump whose trigger and spans carry the drift
// journey's trace.
func TestRunFlightDumpOnRollback(t *testing.T) {
	path := cheapBundlePath(t)
	dir := t.TempDir()
	dumpPath := filepath.Join(dir, "flight.json")
	jsonPath := filepath.Join(dir, "stats.json")
	var out strings.Builder
	err := run(&out, []string{
		"-bundle", path, "-streams", "2", "-clips", "1", "-frames", "150",
		"-cache", "4", "-adapt", "-drift-window", "15", "-canary-frames", "30",
		"-min-f1-ratio", "1e9", "-flight", "-flight-dump", dumpPath, "-slo",
		"-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The run summary reports the anomaly freeze.
	if !strings.Contains(out.String(), "frozen on anomaly") {
		t.Errorf("output missing flight freeze line:\n%s", out.String())
	}

	// The JSON report's adapt, slo and flight blocks agree: a rollback
	// happened and froze the recorder on it.
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	// (The ratio gate is skipped while the incumbent's windowed F1 is
	// zero, so an early canary may still promote — what the smoke pins
	// is that at least one rollback happened and tripped the recorder.)
	if rep.Adapt == nil || rep.Adapt.Rollbacks < 1 {
		t.Fatalf("expected a forced rollback, adapt block: %+v", rep.Adapt)
	}
	if rep.SLO == nil {
		t.Fatal("report missing slo block")
	}
	if rep.Flight == nil || !rep.Flight.Frozen || rep.Flight.Events == 0 {
		t.Fatalf("flight block: %+v", rep.Flight)
	}
	if !strings.HasPrefix(rep.Flight.DumpReason, "rollback:") {
		t.Fatalf("dump reason %q", rep.Flight.DumpReason)
	}

	// The artifact on disk is a valid dump causally linked to the
	// journey: the trigger is the rollback, its trace is a canary-stream
	// drift trace, and the embedded spans all belong to that trace.
	f, err := os.Open(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump, err := flight.ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Reason != rep.Flight.DumpReason {
		t.Fatalf("artifact reason %q, report says %q", dump.Reason, rep.Flight.DumpReason)
	}
	if dump.Trigger.Kind != flight.KindRollback {
		t.Fatalf("trigger kind %q", dump.Trigger.Kind)
	}
	if !strings.HasPrefix(dump.Trigger.Trace, "d") || !strings.Contains(dump.Trigger.Trace, ".g") {
		t.Fatalf("trigger trace %q is not a drift trace", dump.Trigger.Trace)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("dump has no causally linked spans")
	}
	events := make(map[string]bool)
	for _, s := range dump.Spans {
		if s.Trace != dump.Trigger.Trace {
			t.Fatalf("dump span off-trace: %+v", s)
		}
		events[s.Event] = true
	}
	for _, want := range []string{"report", "canary_start", "rollback"} {
		if !events[want] {
			t.Errorf("dump spans missing journey event %q (have %v)", want, events)
		}
	}
	if dump.Metrics["anole_adapt_rollbacks_total"] < 1 {
		t.Fatalf("dump metrics: rollbacks_total = %v", dump.Metrics["anole_adapt_rollbacks_total"])
	}
	if dump.Config["streams"] != "2" {
		t.Fatalf("dump config echo: %v", dump.Config)
	}
}
