// Command anole-run loads a profiled bundle and streams a synthetic
// driving trace through the Online Model Inference loop on a simulated
// device, printing per-clip accuracy and the run's latency, cache and
// energy statistics.
//
// Usage:
//
//	anole-run -bundle anole.bundle [-seed N] [-clips N] [-frames N]
//	          [-device nano|tx2|laptop] [-cache N] [-streams N]
//	          [-fleet SPEC] [-plan]
//	          [-prefetch] [-prefetch-budget BYTES] [-link-stability P]
//	          [-chaos] [-outage-rate P] [-corrupt-rate P]
//	          [-breaker-threshold N] [-breaker-cooldown FRAMES]
//	          [-adapt] [-drift-window FRAMES] [-canary-frames FRAMES]
//	          [-thermal] [-deadline DUR]
//	          [-checkpoint FILE] [-checkpoint-every TICKS] [-restore FILE]
//	          [-metrics-addr HOST:PORT] [-json FILE|-]
//
// With -streams N > 1 the run multiplexes N independent frame streams
// over one shared thread-safe model cache (core.MultiRuntime), printing
// per-stream and aggregate statistics; -trace then writes one JSONL
// file per stream, suffixed ".streamK".
//
// With -fleet "nano:40,tx2:40,laptop:20" (requires -streams >= 2,
// overrides -device) the streams run on a heterogeneous device fleet:
// the spec's weights are scaled to the stream count and each stream is
// deterministically assigned a registry profile (nano, tx2, laptop,
// cpu-fast, cpu-slow; "name@mode" pins a power mode). Per-stream lines
// gain the device class, the -json report gains a "fleet" block with
// per-class aggregates, and with -slo the per-class p99 percentiles
// export as anole_fleet_<class>_* gauges. With -plan (requires -fleet,
// incompatible with -adapt) each stream additionally runs the model
// variant — full precision or a quantized copy (q8/q6/q4) — that is the
// most accurate its device can serve within the memory ceiling and the
// 33ms latency budget; pressure-level transitions re-plan.
//
// With -prefetch the model cache sits behind a simulated device↔cloud
// link (netsim, self-transition stability -link-stability): a desired
// model that is not resident stalls its frame on an on-demand fetch,
// and a scene-transition Markov model prefetches the likeliest next
// models in the background, within -prefetch-budget bytes per plan.
//
// With -chaos (implies -prefetch) a deterministic seeded fault injector
// wraps the link: outage bursts (-outage-rate) and corrupted transfers
// (-corrupt-rate). The demand path fails fast during outages, a circuit
// breaker (-breaker-threshold failures to open, -breaker-cooldown frames
// to half-open) pauses background prefetching while the path is bad, and
// the runtime serves stale resident models in degraded mode — every
// frame is still served; degradedFrames / fallbackServed / breakerOpens
// in the -json report count the damage.
//
// With -thermal every device simulator runs the default thermal
// throttling model: sustained load heats the device and derates compute.
// With -deadline (requires -streams >= 2) each frame gets a latency
// target and the fleet survives overload by shedding: a deadline
// controller escalates a shed ladder (skip prefetch → serve the smallest
// resident model → drop the frame) and a pressure monitor folds heat,
// cache residency and backlog into Nominal/Elevated/Critical reactions.
// Every offered frame gets a terminal verdict; the -json report gains a
// "pressure" block and anole_pressure_* metrics count the damage.
//
// With -checkpoint the run writes a versioned, CRC-checked warm-state
// checkpoint (Markov transition counts, cache residency manifest, drift
// windows, fleet generation) on completion — and every -checkpoint-every
// ticks while running. With -restore the run warm-starts from such a
// file; a corrupt, truncated or version-skewed checkpoint falls back to
// a cold start (never a partial restore). Both require -streams >= 2.
//
// With -adapt (requires -streams >= 2) the run closes the paper's
// continual-adaptation loop in-process: stream 0's trace is replaced by
// a scene absent from the bundle's training label space, per-stream
// drift detectors (window -drift-window) report the emerging scene to
// an in-process adaptation controller, the controller retrains a new
// specialist and publishes it through a versioned repository, and the
// new generation canaries on stream 0 for -canary-frames frames before
// fleet-wide promotion or rollback. The -json report gains an "adapt"
// block (drift events, reports, canary verdicts, fleet generation) and
// the anole_adapt_* counters appear in metrics.
//
// Every run drives a telemetry registry and a frame-pipeline span
// tracer: -json includes the full anole_* counter set (flattened) plus
// the retained per-frame stage spans, and -metrics-addr serves live
// Prometheus-text /metrics, JSON /debug/spans and /debug/pprof on the
// given address (use 127.0.0.1:0 for an ephemeral port) while the run
// executes. With -prefetch the span clock is the simulated link clock,
// so span timestamps are deterministic for a fixed seed.
//
// -json writes the aggregate statistics — cache hit/miss/eviction and
// prefetch counters included — as one JSON object to a file, or to
// stdout with "-".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"

	"anole/internal/adapt"
	"anole/internal/breaker"
	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/device"
	"anole/internal/faults"
	"anole/internal/flight"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/pressure"
	"anole/internal/repo"
	"anole/internal/sampling"
	"anole/internal/slo"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/trace"
	"anole/internal/xrand"
)

// testHookMetricsSettled, when set by a test, is invoked after the run's
// counters have settled (scheduler drained, report written) with the
// debug listener's address, while the listener is still serving — the
// window in which live /metrics must agree with the -json report.
var testHookMetricsSettled func(addr string)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-run:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("anole-run", flag.ContinueOnError)
	var (
		bundlePath  = fs.String("bundle", "anole.bundle", "bundle file produced by anole-profile")
		seed        = fs.Uint64("seed", 1, "seed of the world the bundle was profiled on")
		clips       = fs.Int("clips", 3, "number of trace clips to stream")
		frames      = fs.Int("frames", 150, "frames per trace clip")
		devName     = fs.String("device", "tx2", "device profile: nano, tx2 or laptop")
		cache       = fs.Int("cache", 5, "model cache capacity in compressed-model slots")
		streams     = fs.Int("streams", 1, "independent frame streams sharing the model cache")
		fleetSpec   = fs.String("fleet", "", "heterogeneous device fleet spec, e.g. \"nano:40,tx2:40,laptop:20\" (requires -streams >= 2; overrides -device)")
		planOn      = fs.Bool("plan", false, "per-device planning: each stream runs the most accurate model variant (fp32/q8/q6/q4) its device can serve (requires -fleet, incompatible with -adapt)")
		batchOn     = fs.Bool("batch", false, "batch each tick's ready streams through the decision and detection models (deterministic, bit-identical results)")
		tracePath   = fs.String("trace", "", "write a JSONL decision trace to this file")
		prefetchOn  = fs.Bool("prefetch", false, "serve model bytes over a simulated device-cloud link with transition-aware prefetching")
		pfBudget    = fs.Int64("prefetch-budget", 0, "max bytes in flight per prefetch plan (0 = unlimited)")
		stability   = fs.Float64("link-stability", 0.7, "link-state self-transition probability in [0,1] (with -prefetch)")
		chaosOn     = fs.Bool("chaos", false, "inject deterministic seeded faults on the device-cloud link (implies -prefetch)")
		outageRate  = fs.Float64("outage-rate", 0.3, "per-frame probability of starting a link outage burst (with -chaos)")
		crptRate    = fs.Float64("corrupt-rate", 0.05, "per-transfer probability of payload corruption (with -chaos)")
		brkThresh   = fs.Int("breaker-threshold", 5, "consecutive fetch failures before the circuit breaker opens (with -chaos)")
		brkCool     = fs.Int("breaker-cooldown", 20, "frames an open breaker waits before a half-open probe (with -chaos)")
		adaptOn     = fs.Bool("adapt", false, "close the continual-adaptation loop: inject an unseen scene on stream 0, detect drift, retrain in-process, canary and roll out (requires -streams >= 2)")
		thermalOn   = fs.Bool("thermal", false, "enable the default thermal throttling model on every device simulator")
		deadline    = fs.Duration("deadline", 0, "per-frame simulated latency target enabling deadline-aware shedding (requires -streams >= 2)")
		ckptPath    = fs.String("checkpoint", "", "write a warm-state checkpoint to this file on completion (requires -streams >= 2)")
		ckptEvery   = fs.Int("checkpoint-every", 0, "also checkpoint every N frame ticks during the run (with -checkpoint, no -adapt)")
		restorePath = fs.String("restore", "", "warm-start from this checkpoint file; corrupt or unreadable falls back to cold start (requires -streams >= 2)")
		driftWin    = fs.Int("drift-window", 30, "drift-detector window in frames (with -adapt)")
		canaryFr    = fs.Int("canary-frames", 60, "canary-stream frames before a rollout verdict (with -adapt)")
		minF1Ratio  = fs.Float64("min-f1-ratio", 0.5, "canary-to-incumbent F1 ratio below which a canary rolls back (with -adapt)")
		flightOn    = fs.Bool("flight", false, "run the anomaly flight recorder: bounded event rings frozen and dumped when a rollback, Critical pressure, quarantine or checkpoint reject lands (requires -streams >= 2)")
		flightDump  = fs.String("flight-dump", "", "write the flight-recorder dump artifact to this file the moment an anomaly trips (with -flight)")
		sloOn       = fs.Bool("slo", false, "evaluate fleet SLOs (frame p99 latency, served/degraded fractions, swap staleness) with multi-window burn rates; adds the anole_slo_* series and an \"slo\" block to -json (requires -streams >= 2)")
		sloLatency  = fs.Duration("slo-latency-target", 50*time.Millisecond, "frame p99 latency objective (with -slo)")
		sloStale    = fs.Duration("slo-staleness-target", 10*time.Second, "publish-to-swap staleness objective (with -slo)")
		metricsAddr = fs.String("metrics-addr", "", "serve live /metrics, /debug/spans, /debug/flight and /debug/pprof on this address during the run (e.g. 127.0.0.1:0)")
		jsonPath    = fs.String("json", "", "write aggregate stats JSON to this file (\"-\" for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *streams < 1 {
		return fmt.Errorf("-streams must be >= 1, got %d", *streams)
	}
	if *adaptOn && *streams < 2 {
		return fmt.Errorf("-adapt needs a canary stream and an incumbent reference: -streams must be >= 2, got %d", *streams)
	}
	if *chaosOn {
		*prefetchOn = true
	}
	if (*deadline > 0 || *ckptPath != "" || *restorePath != "") && *streams < 2 {
		return fmt.Errorf("-deadline, -checkpoint and -restore drive the multi-stream fleet: -streams must be >= 2")
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint")
	}
	if *ckptEvery > 0 && *adaptOn {
		return fmt.Errorf("-checkpoint-every cannot chunk an -adapt run (checkpoint is still written on completion)")
	}
	if (*flightOn || *sloOn) && *streams < 2 {
		return fmt.Errorf("-flight and -slo observe the multi-stream fleet: -streams must be >= 2")
	}
	if *flightDump != "" && !*flightOn {
		return fmt.Errorf("-flight-dump needs -flight")
	}
	if *fleetSpec != "" && *streams < 2 {
		return fmt.Errorf("-fleet assigns devices across the multi-stream fleet: -streams must be >= 2")
	}
	if *planOn && *fleetSpec == "" {
		return fmt.Errorf("-plan selects variants per fleet device: it needs -fleet")
	}
	if *planOn && *adaptOn {
		return fmt.Errorf("-plan and -adapt both own bundle assignment; pick one")
	}

	bundle, err := repo.LoadFile(*bundlePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bundle: %d compressed models, feat dim %d\n", bundle.NumModels(), bundle.FeatDim)

	var profile device.Profile
	switch *devName {
	case "nano":
		profile = device.JetsonNano
	case "tx2":
		profile = device.JetsonTX2NX
	case "laptop":
		profile = device.Laptop
	default:
		return fmt.Errorf("unknown device %q (want nano, tx2 or laptop)", *devName)
	}
	var fleet device.Fleet
	if *fleetSpec != "" {
		if fleet, err = device.BuildFleet(*fleetSpec, *streams, *seed); err != nil {
			return err
		}
	}
	reg := telemetry.NewRegistry()
	// rec is assigned below, after the link (whose clock it shares) is
	// built; the breaker transition hook closes over the variable and
	// nil-safe Record ignores transitions before assignment.
	var rec *flight.Recorder
	var pfCfg *prefetch.Config
	var lf *prefetch.LinkFetcher
	if *prefetchOn {
		var chaos *chaosConfig
		if *chaosOn {
			chaos = &chaosConfig{
				OutageRate:       *outageRate,
				CorruptRate:      *crptRate,
				BreakerThreshold: *brkThresh,
				BreakerCooldown:  *brkCool,
				OnBreaker: func(from, to breaker.State) {
					rec.Record(flight.Event{
						Stream: flight.GlobalStream,
						Kind:   flight.KindBreaker,
						Detail: to.String(),
						Value:  float64(to),
					})
				},
			}
		}
		pfCfg, lf, err = linkPrefetchConfig(bundle, *stability, *pfBudget, *seed, chaos, reg)
		if err != nil {
			return err
		}
	}
	// Span clock: the simulated link clock when a link exists (span
	// timestamps then deterministic for a fixed seed), wall time
	// otherwise.
	var spanClock func() time.Duration
	if lf != nil {
		spanClock = lf.Now
	}
	spans := telemetry.NewTracer(0, spanClock)

	if *flightOn {
		fcfg := flight.Config{
			Now:    spanClock,
			Spans:  spans,
			Gather: reg,
			Info: map[string]string{
				"seed":    fmt.Sprint(*seed),
				"streams": fmt.Sprint(*streams),
				"device":  *devName,
				"fleet":   *fleetSpec,
				"chaos":   fmt.Sprint(*chaosOn),
				"adapt":   fmt.Sprint(*adaptOn),
			},
			Metrics: reg,
		}
		if *flightDump != "" {
			path := *flightDump
			fcfg.OnDump = func(d *flight.Dump) {
				f, err := os.Create(path)
				if err != nil {
					return
				}
				defer f.Close()
				_ = flight.WriteDump(f, d)
			}
		}
		rec = flight.NewRecorder(fcfg)
	}
	var eng *slo.Engine
	if *sloOn {
		eng = slo.NewEngine(slo.Config{
			LatencyTarget:   *sloLatency,
			StalenessTarget: *sloStale,
			Now:             spanClock,
			Metrics:         reg,
		})
	}

	var metricsURL string
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.MetricsHandler(reg))
		mux.Handle("/debug/spans", telemetry.SpansHandler(spans))
		mux.Handle("/debug/flight", flight.Handler(rec))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		metricsURL = ln.Addr().String()
		fmt.Fprintf(w, "debug: serving /metrics, /debug/spans, /debug/pprof on http://%s\n", metricsURL)
	}
	settled := func() {
		if testHookMetricsSettled != nil && metricsURL != "" {
			testHookMetricsSettled(metricsURL)
		}
	}

	if *streams > 1 {
		var ao *adaptOptions
		if *adaptOn {
			ao = &adaptOptions{DriftWindow: *driftWin, CanaryFrames: *canaryFr, MinF1Ratio: *minF1Ratio}
		}
		ro := runOptions{
			Thermal:         *thermalOn,
			Fleet:           fleet,
			FleetSpec:       *fleetSpec,
			Plan:            *planOn,
			Deadline:        *deadline,
			Checkpoint:      *ckptPath,
			CheckpointEvery: *ckptEvery,
			Restore:         *restorePath,
			Flight:          rec,
			SLO:             eng,
		}
		if err := runMulti(w, bundle, profile, *streams, *cache, *clips, *frames, *seed, *batchOn, *tracePath, pfCfg, lf, ao, ro, *jsonPath, reg, spans); err != nil {
			return err
		}
		settled()
		return nil
	}

	sim, err := device.NewSimulator(profile)
	if err != nil {
		return err
	}
	if *thermalOn {
		sim.EnableThermal(device.DefaultThermal())
	}
	rt, err := core.NewRuntime(bundle, core.RuntimeConfig{
		CacheSlots: *cache,
		Device:     sim,
		Prefetch:   pfCfg,
		Metrics:    reg,
		Tracer:     spans,
	})
	if err != nil {
		return err
	}

	var tracer *trace.Writer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = trace.NewWriter(tf)
		defer tracer.Flush()
	}

	world, err := synth.NewWorld(synth.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	// Stream freshly generated clips: the BDD-like profile gives the most
	// diverse scene mix.
	traceProfile := synth.DefaultProfiles(1)[1]
	traceProfile.FramesPerClip = *frames
	rng := xrand.NewLabeled(*seed, "anole-run-trace")

	fmt.Fprintf(w, "streaming %d clips x %d frames on %s (cache %d, LFU)\n\n",
		*clips, *frames, profile.Name, *cache)
	for c := 0; c < *clips; c++ {
		clip := world.GenerateClip(traceProfile, 9000+c, rng.Split(uint64(c)))
		var mean float64
		for _, f := range clip.Frames {
			res, err := rt.ProcessFrame(f)
			if err != nil {
				return err
			}
			mean += res.Metrics.F1
			if tracer != nil {
				if err := tracer.Record(bundle, f, res); err != nil {
					return err
				}
			}
		}
		if len(clip.Frames) > 0 {
			mean /= float64(len(clip.Frames))
		}
		fmt.Fprintf(w, "clip %d: mean frame F1 %.3f over %d frames\n", c+1, mean, len(clip.Frames))
	}

	// Drain any background prefetches so the counters are settled, then
	// snapshot.
	sched := rt.Prefetcher()
	rt.Close()
	st := rt.Stats()
	fmt.Fprintf(w, "\nframes %d  switches %d  mean scene duration %.1f frames\n",
		st.Frames, st.Switches, st.MeanSceneDuration())
	fmt.Fprintf(w, "overall F1 %.3f (P %.3f / R %.3f)\n",
		st.Detection.F1, st.Detection.Precision, st.Detection.Recall)
	fmt.Fprintf(w, "cache: hits %d misses %d evictions %d (miss rate %.2f)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.MissRate)
	printPrefetch(w, st, sched)
	fmt.Fprintf(w, "device: mean latency %.1f ms/frame, %.1f FPS busy, %.2f W avg, %.1f J total\n",
		float64(st.TotalLatency.Milliseconds())/float64(st.Frames),
		sim.FPS(), sim.AveragePowerW(), sim.EnergyJ())
	fmt.Fprintf(w, "memory: resident %.0f MB, peak %.0f MB of %.0f MB\n",
		sim.ResidentMemoryMB(), sim.PeakMemoryMB(), profile.GPUMemoryMB)
	if tracer != nil {
		fmt.Fprintf(w, "trace: %d events written to %s\n", tracer.Count(), *tracePath)
	}
	if err := writeReport(w, *jsonPath, buildReport(st, sched, pfBreaker(pfCfg), nil, nil, nil, nil, reg, spans)); err != nil {
		return err
	}
	settled()
	return nil
}

// pfBreaker extracts the circuit breaker from a prefetch configuration
// (nil without -chaos).
func pfBreaker(cfg *prefetch.Config) *breaker.Breaker {
	if cfg == nil {
		return nil
	}
	return cfg.Breaker
}

// report is the aggregate-statistics JSON document behind -json.
type report struct {
	Frames            int     `json:"frames"`
	Switches          int     `json:"switches"`
	MeanSceneDuration float64 `json:"meanSceneDuration"`
	F1                float64 `json:"f1"`
	Precision         float64 `json:"precision"`
	Recall            float64 `json:"recall"`
	TotalLatencyMs    float64 `json:"totalLatencyMs"`
	CacheHits         int64   `json:"cacheHits"`
	CacheMisses       int64   `json:"cacheMisses"`
	CacheEvictions    int64   `json:"cacheEvictions"`
	MissRate          float64 `json:"missRate"`
	Prefetches        int64   `json:"prefetches"`
	PrefetchHits      int64   `json:"prefetchHits"`
	PrefetchWasted    int64   `json:"prefetchWasted"`
	ColdMisses        int     `json:"coldMisses"`
	FetchStallMs      float64 `json:"fetchStallMs"`
	// Resilience counters: frames served stale in degraded mode, frames
	// served by any model other than the decided one, circuit-breaker
	// open transitions and half-open probes, and background prefetches
	// cancelled (preempted by demand fetches or shutdown). Frames ==
	// served frames always — nothing drops.
	DegradedFrames        int   `json:"degradedFrames"`
	FallbackServed        int   `json:"fallbackServed"`
	BreakerOpens          int64 `json:"breakerOpens"`
	BreakerHalfOpenProbes int64 `json:"breakerHalfOpenProbes"`
	PrefetchCancelled     int64 `json:"prefetchCancelled"`
	// Scheduler is present only when -prefetch was set.
	Scheduler *prefetch.SchedulerStats `json:"scheduler,omitempty"`
	// Adapt is present only when -adapt was set: the adaptation loop's
	// counters (drift events, reports, canary verdicts, fleet generation).
	Adapt *adapt.LoopStats `json:"adapt,omitempty"`
	// Pressure is present only when the overload machinery ran
	// (-deadline): final level and shed-ladder rung plus the per-verdict
	// frame counts.
	Pressure *core.PressureStats `json:"pressure,omitempty"`
	// SLO is present only when -slo was set: windowed objectives, burn
	// rates, and fleet percentiles as of run end — the same values the
	// anole_slo_* gauges export.
	SLO *slo.Status `json:"slo,omitempty"`
	// Fleet is present only when -fleet was set: per-device-class
	// aggregates (streams, frames, mean latency, energy, planner
	// variants). Per-class p99 percentiles live in SLO.Classes when
	// -slo also ran.
	Fleet []classReport `json:"fleet,omitempty"`
	// Flight is present only when -flight was set: recorder state plus
	// the captured dump's reason. The full dump artifact is written by
	// -flight-dump and served on /debug/flight?dump=1.
	Flight *flightStatus `json:"flight,omitempty"`
	// Metrics is the run's full telemetry counter set, flattened with
	// telemetry.Map (histograms expand to _count/_sum/_p50/_p95/_p99).
	// Live /metrics (-metrics-addr) serves exactly these values once the
	// run settles.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Spans are the retained per-frame pipeline-stage spans, oldest
	// first (the tracer keeps the most recent telemetry.DefaultSpanBuffer).
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// flightStatus is the -json report's flight-recorder block.
type flightStatus struct {
	Frozen     bool   `json:"frozen"`
	Events     int    `json:"events"`
	Dropped    int64  `json:"dropped"`
	DumpReason string `json:"dumpReason,omitempty"`
}

func buildReport(st core.RunStats, sched *prefetch.Scheduler, brk *breaker.Breaker, ast *adapt.LoopStats, press *core.PressureStats, eng *slo.Engine, rec *flight.Recorder, reg *telemetry.Registry, spans *telemetry.Tracer) report {
	rep := report{
		Frames:            st.Frames,
		Switches:          st.Switches,
		MeanSceneDuration: st.MeanSceneDuration(),
		F1:                st.Detection.F1,
		Precision:         st.Detection.Precision,
		Recall:            st.Detection.Recall,
		TotalLatencyMs:    1e3 * st.TotalLatency.Seconds(),
		CacheHits:         st.Cache.Hits,
		CacheMisses:       st.Cache.Misses,
		CacheEvictions:    st.Cache.Evictions,
		MissRate:          st.MissRate,
		Prefetches:        st.Cache.Prefetches,
		PrefetchHits:      st.Cache.PrefetchHits,
		PrefetchWasted:    st.Cache.PrefetchWasted,
		ColdMisses:        st.ColdMisses,
		FetchStallMs:      1e3 * st.FetchStall.Seconds(),
		DegradedFrames:    st.DegradedFrames,
		FallbackServed:    st.FallbackServed,
	}
	if sched != nil {
		ps := sched.Stats()
		rep.Scheduler = &ps
		rep.BreakerOpens = ps.BreakerOpens
		rep.PrefetchCancelled = ps.Cancelled
	}
	if brk != nil {
		rep.BreakerHalfOpenProbes = brk.HalfOpens()
	}
	rep.Adapt = ast
	rep.Pressure = press
	if eng != nil {
		// Status refreshes the anole_slo_* gauges, so it must run before
		// the registry snapshot below for scrape == report to hold.
		sst := eng.Status()
		rep.SLO = &sst
	}
	if rec != nil {
		fst := flightStatus{
			Frozen:  rec.Frozen(),
			Events:  len(rec.Snapshot()),
			Dropped: rec.Dropped(),
		}
		if d := rec.LastDump(); d != nil {
			fst.DumpReason = d.Reason
		}
		rep.Flight = &fst
	}
	if reg != nil {
		rep.Metrics = telemetry.Map(reg)
	}
	if spans != nil {
		rep.Spans = spans.Snapshot()
	}
	return rep
}

// writeReport emits the JSON document to path ("-" = the run's output
// writer); an empty path writes nothing.
func writeReport(w io.Writer, path string, rep report) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = w.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// printPrefetch summarizes the link and prefetch behavior of a run (a
// no-op without -prefetch).
func printPrefetch(w io.Writer, st core.RunStats, sched *prefetch.Scheduler) {
	if sched == nil {
		return
	}
	ps := sched.Stats()
	fmt.Fprintf(w, "link: cold misses %d  demand stall %.1f ms total (%.1f ms/switch)\n",
		st.ColdMisses, 1e3*st.FetchStall.Seconds(),
		1e3*st.FetchStall.Seconds()/max(1, float64(st.Switches)))
	fmt.Fprintf(w, "prefetch: issued %d completed %d cancelled %d failed %d  cache prefetch hits %d wasted %d\n",
		ps.Issued, ps.Completed, ps.Cancelled, ps.Failed,
		st.Cache.PrefetchHits, st.Cache.PrefetchWasted)
	if st.DegradedFrames > 0 || ps.BreakerOpens > 0 || ps.SkippedBreaker > 0 {
		fmt.Fprintf(w, "resilience: degraded frames %d  fallback served %d  breaker opens %d (plans skipped %d)\n",
			st.DegradedFrames, st.FallbackServed, ps.BreakerOpens, ps.SkippedBreaker)
	}
}

// chaosConfig carries the -chaos knobs into linkPrefetchConfig.
type chaosConfig struct {
	OutageRate       float64
	CorruptRate      float64
	BreakerThreshold int
	BreakerCooldown  int // frames
	// OnBreaker, when non-nil, observes every breaker state transition
	// (the flight recorder's KindBreaker feed).
	OnBreaker func(from, to breaker.State)
}

// linkPrefetchConfig builds the prefetch configuration used by
// -prefetch: a simulated link of the given stability carrying
// paper-scale model payloads, ticked once per processed frame. With
// chaos non-nil the link is wrapped in a seeded fault injector and the
// scheduler gets a circuit breaker on the simulated link clock; the
// demand path then fails fast during outages so degraded mode engages
// instead of stalling frames. The scheduler and breaker register their
// counters on reg; the returned LinkFetcher exposes the simulated link
// clock for the span tracer.
func linkPrefetchConfig(bundle *core.Bundle, stability float64, budget int64, seed uint64, chaos *chaosConfig, reg *telemetry.Registry) (*prefetch.Config, *prefetch.LinkFetcher, error) {
	link, err := netsim.NewLink(netsim.DefaultConfig(stability), xrand.NewLabeled(seed, "anole-run-link"))
	if err != nil {
		return nil, nil, err
	}
	var medium netsim.Medium = link
	if chaos != nil {
		medium = faults.WrapLink(link, faults.Config{
			Seed: seed,
			// The very first frame blocks on its fetch with an empty
			// cache; one grace step lets it through before injection.
			GraceSteps:  1,
			OutageRate:  chaos.OutageRate,
			CorruptRate: chaos.CorruptRate,
		})
	}
	lf, err := prefetch.NewLinkFetcher(medium, core.PrefetchModels(bundle), prefetch.DefaultFrameInterval)
	if err != nil {
		return nil, nil, err
	}
	cfg := &prefetch.Config{Fetcher: lf, BudgetBytes: budget, Metrics: reg}
	if chaos != nil {
		lf.SetDemandDownLimit(0)
		cfg.Breaker = breaker.New(breaker.Config{
			FailureThreshold: chaos.BreakerThreshold,
			Cooldown:         time.Duration(chaos.BreakerCooldown) * lf.Interval(),
			Now:              lf.Now,
			Metrics:          reg,
			OnTransition:     chaos.OnBreaker,
		})
	}
	return cfg, lf, nil
}

// adaptOptions carries the -adapt knobs into runMulti.
type adaptOptions struct {
	DriftWindow  int
	CanaryFrames int
	MinF1Ratio   float64
}

// runOptions carries the overload-survival and observability knobs into
// runMulti.
type runOptions struct {
	Thermal bool
	// Fleet is the -fleet heterogeneous device assignment (nil = the
	// uniform -device profile); FleetSpec is the raw spec for display.
	// Plan enables per-device variant selection over the fleet.
	Fleet           device.Fleet
	FleetSpec       string
	Plan            bool
	Deadline        time.Duration
	Checkpoint      string
	CheckpointEvery int
	Restore         string
	Flight          *flight.Recorder
	SLO             *slo.Engine
}

// saveCheckpoint snapshots the fleet's warm state (plus the adapt
// loop's generation and drift windows when present) and writes it
// atomically.
func saveCheckpoint(mrt *core.MultiRuntime, loop *adapt.Loop, path string) error {
	c := mrt.CaptureCheckpoint()
	if loop != nil {
		loop.CaptureCheckpoint(c)
	}
	return pressure.SaveCheckpoint(path, c)
}

// unseenScene returns a semantic scene absent from the bundle encoder's
// training label space, preferring night scenes (the hardest shift).
func unseenScene(b *core.Bundle) (synth.Scene, error) {
	known := make(map[int]bool)
	for _, idx := range b.Encoder.ClassToScene {
		known[idx] = true
	}
	fallback := -1
	for idx := 0; idx < synth.NumScenes; idx++ {
		if known[idx] {
			continue
		}
		s := synth.SceneFromIndex(idx)
		if s.Time == synth.Night {
			return s, nil
		}
		if fallback < 0 {
			fallback = idx
		}
	}
	if fallback >= 0 {
		return synth.SceneFromIndex(fallback), nil
	}
	return synth.Scene{}, fmt.Errorf("every semantic scene was seen in training")
}

// adaptLoop wires the in-process device→cloud→device loop behind -adapt:
// a versioned repository seeded with the running bundle, a retraining
// controller over frames regenerated for the bundle's training scenes,
// and the canary rollout loop around the fleet. With -prefetch the
// transport learns a new generation's models before they become
// fetchable.
func adaptLoop(mrt *core.MultiRuntime, bundle *core.Bundle, world *synth.World, seed uint64, ao *adaptOptions, lf *prefetch.LinkFetcher, rec *flight.Recorder, eng *slo.Engine, reg *telemetry.Registry, spans *telemetry.Tracer) (*adapt.Loop, error) {
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return nil, err
	}
	rng := xrand.NewLabeled(seed, "anole-run-adapt-train")
	const framesPerScene = 30
	seen := make(map[int]bool)
	var trainFrames []*synth.Frame
	for _, idx := range bundle.Encoder.ClassToScene {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		s := synth.SceneFromIndex(idx)
		for i := 0; i < framesPerScene; i++ {
			trainFrames = append(trainFrames, world.GenerateFrame(s, 1, rng))
		}
	}
	ctrl, err := adapt.NewController(bundle, srv, adapt.ControllerConfig{
		Seed:        seed + 1,
		TrainFrames: trainFrames,
		Train:       detect.TrainConfig{Epochs: 20},
		Sampling:    sampling.Config{Kappa: 600},
		Metrics:     reg,
		Tracer:      spans,
	})
	if err != nil {
		return nil, err
	}
	cfg := adapt.LoopConfig{
		Drift: adapt.DriftConfig{Window: ao.DriftWindow, Cooldown: 1},
		// The candidate serves a scene the incumbent cannot, so shared-
		// scene slack is tolerated by the default -min-f1-ratio; a broken
		// model still lands far below.
		Rollout:   adapt.RolloutConfig{CanaryFrames: ao.CanaryFrames, MinF1Ratio: ao.MinF1Ratio},
		Submitter: ctrl,
		Source:    adapt.NewServerSource(srv),
		Metrics:   reg,
		Tracer:    spans,
		Flight:    rec,
		SLO:       eng,
	}
	if lf != nil {
		cfg.RegisterModels = lf.AddModels
	}
	// Under pressure the uplink yields: drift reports defer while the
	// fleet reads Critical (nil monitor when -deadline is off).
	cfg.Pressure = mrt.PressureMonitor()
	return adapt.NewLoop(mrt, cfg)
}

// runMulti drives the multi-stream path: every stream gets its own
// generated clip sequence and device simulator, all streams share one
// sharded model cache. With ao non-nil the run goes through the
// adaptation loop instead of bare ProcessStreams.
func runMulti(w io.Writer, bundle *core.Bundle, profile device.Profile, streams, cache, clips, frames int, seed uint64, batch bool, tracePath string, pfCfg *prefetch.Config, lf *prefetch.LinkFetcher, ao *adaptOptions, ro runOptions, jsonPath string, reg *telemetry.Registry, spans *telemetry.Tracer) error {
	mcfg := core.MultiRuntimeConfig{
		Streams:    streams,
		CacheSlots: cache,
		Device:     &profile,
		Prefetch:   pfCfg,
		Metrics:    reg,
		Tracer:     spans,
		Batch:      batch,
		Deadline:   ro.Deadline,
		Flight:     ro.Flight,
		SLO:        ro.SLO,
	}
	if ro.Fleet != nil {
		mcfg.Fleet = ro.Fleet
		mcfg.Device = nil
	}
	if ro.Plan {
		mcfg.Plan = &core.PlanConfig{}
	}
	if ro.Thermal {
		mcfg.Thermal = device.DefaultThermal()
	}
	mrt, err := core.NewMultiRuntime(bundle, mcfg)
	if err != nil {
		return err
	}

	world, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		return err
	}
	traceProfile := synth.DefaultProfiles(1)[1]
	traceProfile.FramesPerClip = frames
	rng := xrand.NewLabeled(seed, "anole-run-trace")

	inputs := make([][]*synth.Frame, streams)
	for s := 0; s < streams; s++ {
		for c := 0; c < clips; c++ {
			// Distinct clip IDs per stream so the streams see different
			// (but reproducible) scene sequences.
			id := s*clips + c
			clip := world.GenerateClip(traceProfile, 9000+id, rng.Split(uint64(id)))
			inputs[s] = append(inputs[s], clip.Frames...)
		}
	}

	var loop *adapt.Loop
	var novel synth.Scene
	if ao != nil {
		var err error
		if novel, err = unseenScene(bundle); err != nil {
			return err
		}
		// Stream 0 (the canary stream) meets the unseen scene for the
		// whole run; the other streams stay on in-distribution traces and
		// anchor the rollout's incumbent telemetry.
		arng := rng.Split(uint64(streams * clips))
		for i := range inputs[0] {
			inputs[0][i] = world.GenerateFrame(novel, 1, arng)
		}
		if loop, err = adaptLoop(mrt, bundle, world, seed, ao, lf, ro.Flight, ro.SLO, reg, spans); err != nil {
			return err
		}
	}

	if ro.Restore != "" {
		// A bad checkpoint (missing, truncated, corrupt, version-skewed)
		// must cost only warmth: log it and cold-start.
		if c, err := pressure.LoadCheckpoint(ro.Restore); err != nil {
			fmt.Fprintf(w, "restore: %v; cold start\n", err)
		} else if warmed, err := mrt.RestoreCheckpoint(c); err != nil {
			fmt.Fprintf(w, "restore: %v; cold start\n", err)
		} else {
			windows := 0
			if loop != nil {
				windows = loop.RestoreCheckpoint(c)
			}
			fmt.Fprintf(w, "restore: warmed %d models from %s (generation %d, drift windows %d)\n",
				warmed, ro.Restore, c.Generation, windows)
		}
	}

	var obs core.StreamObserver
	var tracers []*trace.Writer
	if tracePath != "" {
		tracers = make([]*trace.Writer, streams)
		for s := 0; s < streams; s++ {
			tf, err := os.Create(fmt.Sprintf("%s.stream%d", tracePath, s))
			if err != nil {
				return err
			}
			defer tf.Close()
			tracers[s] = trace.NewWriter(tf)
			defer tracers[s].Flush()
		}
		// Observers run concurrently across streams but sequentially
		// within one, and each stream writes only its own file.
		obs = func(stream int, f *synth.Frame, res core.FrameResult) error {
			return tracers[stream].Record(bundle, f, res)
		}
	}

	mode := fmt.Sprintf("%d workers", mrt.Workers())
	if batch {
		mode = "batched"
	}
	platform := profile.Name
	if ro.Fleet != nil {
		platform = "fleet " + ro.FleetSpec
		if ro.Plan {
			platform += " (planned)"
		}
	}
	fmt.Fprintf(w, "streaming %d streams x %d clips x %d frames on %s (cache %d, LFU, %s)\n\n",
		streams, clips, frames, platform, cache, mode)
	if loop != nil {
		fmt.Fprintf(w, "adapt: stream 0 enters unseen scene %s (drift window %d, canary %d frames)\n\n",
			novel, ao.DriftWindow, ao.CanaryFrames)
		if _, err := loop.Run(inputs, obs); err != nil {
			return err
		}
	} else if ro.CheckpointEvery > 0 {
		// Chunked run: process CheckpointEvery ticks at a time and snap a
		// checkpoint after each chunk, so a process death loses at most
		// one chunk of warmth.
		maxLen := 0
		for s := range inputs {
			if len(inputs[s]) > maxLen {
				maxLen = len(inputs[s])
			}
		}
		chunk := make([][]*synth.Frame, streams)
		for start := 0; start < maxLen; start += ro.CheckpointEvery {
			for s := range inputs {
				chunk[s] = nil
				if start < len(inputs[s]) {
					end := start + ro.CheckpointEvery
					if end > len(inputs[s]) {
						end = len(inputs[s])
					}
					chunk[s] = inputs[s][start:end]
				}
			}
			if _, err := mrt.ProcessStreams(chunk, obs); err != nil {
				return err
			}
			if err := saveCheckpoint(mrt, loop, ro.Checkpoint); err != nil {
				return err
			}
		}
	} else if _, err := mrt.ProcessStreams(inputs, obs); err != nil {
		return err
	}
	if ro.Checkpoint != "" {
		// Snapshot before Close detaches the scheduler (the Markov counts
		// live behind it); the cache manifest is thread-safe against any
		// still-draining prefetches.
		if err := saveCheckpoint(mrt, loop, ro.Checkpoint); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint: wrote %s\n", ro.Checkpoint)
	}

	for s := 0; s < streams; s++ {
		st := mrt.StreamStats(s)
		sim := mrt.StreamDevice(s)
		tag := ""
		if ro.Fleet != nil {
			tag = " [" + ro.Fleet[s].Class
			if v := mrt.StreamVariant(s); v != "" {
				tag += " " + v
			}
			tag += "]"
		}
		fmt.Fprintf(w, "stream %d%s: %d frames  F1 %.3f  switches %d  %.1f FPS busy  %.1f J\n",
			s, tag, st.Frames, st.Detection.F1, st.Switches, sim.FPS(), sim.EnergyJ())
	}
	var fleetClasses []classReport
	if ro.Fleet != nil {
		fleetClasses = fleetReport(mrt)
	}
	for _, cr := range fleetClasses {
		variants := ""
		for _, v := range cr.Variants {
			if variants != "" {
				variants += " "
			}
			variants += fmt.Sprintf("%s×%d", v.Variant, v.Streams)
		}
		if variants != "" {
			variants = "  variants " + variants
		}
		fmt.Fprintf(w, "fleet %s (%s): %d streams  %d frames  mean %.1f ms/frame  %.1f J%s\n",
			cr.Class, cr.Profile, cr.Streams, cr.Frames, cr.MeanLatencyMs, cr.EnergyJ, variants)
	}

	// Drain the shared scheduler before snapshotting the aggregate, so
	// cache and scheduler counters are settled.
	sched := mrt.Prefetcher()
	mrt.Close()
	agg := mrt.Stats()
	fmt.Fprintf(w, "\naggregate: frames %d  switches %d  F1 %.3f (P %.3f / R %.3f)\n",
		agg.Frames, agg.Switches, agg.Detection.F1, agg.Detection.Precision, agg.Detection.Recall)
	fmt.Fprintf(w, "shared cache: hits %d misses %d evictions %d (miss rate %.2f)\n",
		agg.Cache.Hits, agg.Cache.Misses, agg.Cache.Evictions, agg.MissRate)
	printPrefetch(w, agg, sched)
	makespan := mrt.SimulatedMakespan()
	if ms := makespan.Seconds(); ms > 0 {
		fmt.Fprintf(w, "simulated makespan %.1f ms  aggregate %.1f frames/s (vs %.1f sequential)\n",
			1e3*ms, float64(agg.Frames)/ms, float64(agg.Frames)/agg.TotalLatency.Seconds())
	}
	press := mrt.PressureStats()
	if press != nil {
		fmt.Fprintf(w, "pressure: level %s  rung %s  shed %d  downgraded %d  quarantined %d frames (%d quarantines)\n",
			press.Level, press.Rung, press.ShedFrames, press.DowngradedServed,
			press.QuarantinedFrames, press.Quarantines)
	}
	var ast *adapt.LoopStats
	if loop != nil {
		st := loop.Stats()
		ast = &st
		fmt.Fprintf(w, "adapt: drift events %d  reports %d sent / %d lost (%d bytes up)\n",
			st.DriftEvents, st.ReportsSent, st.ReportFailures, st.ReportBytes)
		fmt.Fprintf(w, "adapt: canaries %d  promotions %d  rollbacks %d  rejected %d  fleet generation %d\n",
			st.CanaryStarts, st.Promotions, st.Rollbacks, st.RejectedCandidates, st.FleetGeneration)
	}
	if eng := ro.SLO; eng != nil {
		sst := eng.Status()
		fmt.Fprintf(w, "slo: p99 %.1f ms  served %.3f  degraded %.3f  staleness %.1f ms  alerts %v\n",
			1e3*sst.Long.LatencyP99.Seconds(), sst.Long.ServedFraction,
			sst.Long.DegradedFraction, 1e3*sst.Long.SwapStaleness.Seconds(), sst.Alerts)
		for _, cs := range sst.Classes {
			fmt.Fprintf(w, "slo fleet %s: p99 max %.1f ms  p99 median %.1f ms  served min %.3f  (%d streams)\n",
				cs.Class, 1e3*cs.LatencyP99Max.Seconds(), 1e3*cs.LatencyP99P50.Seconds(),
				cs.ServedFractionMin, cs.Streams)
		}
	}
	if rec := ro.Flight; rec != nil {
		line := fmt.Sprintf("flight: %d events retained", len(rec.Snapshot()))
		if d := rec.LastDump(); d != nil {
			line += fmt.Sprintf("  frozen on anomaly %q (%d events dropped since)", d.Reason, rec.Dropped())
		}
		fmt.Fprintln(w, line)
	}
	if tracers != nil {
		total := 0
		for _, tr := range tracers {
			total += tr.Count()
		}
		fmt.Fprintf(w, "trace: %d events written to %s.stream{0..%d}\n", total, tracePath, streams-1)
	}
	rep := buildReport(agg, sched, pfBreaker(pfCfg), ast, press, ro.SLO, ro.Flight, reg, spans)
	rep.Fleet = fleetClasses
	return writeReport(w, jsonPath, rep)
}

// variantCount is one (variant, stream count) cell of a class report.
type variantCount struct {
	Variant string `json:"variant"`
	Streams int    `json:"streams"`
}

// classReport aggregates one device class of the fleet for the -json
// report's "fleet" block and the run summary.
type classReport struct {
	Class         string         `json:"class"`
	Profile       string         `json:"profile"`
	Streams       int            `json:"streams"`
	Frames        int            `json:"frames"`
	MeanLatencyMs float64        `json:"meanLatencyMs"`
	EnergyJ       float64        `json:"energyJ"`
	Variants      []variantCount `json:"variants,omitempty"`
}

// fleetReport folds per-stream stats into per-class aggregates, sorted
// by class (nil without -fleet).
func fleetReport(mrt *core.MultiRuntime) []classReport {
	fl := mrt.Fleet()
	if fl == nil {
		return nil
	}
	byClass := make(map[string]*classReport)
	var order []string
	var latency = make(map[string]time.Duration)
	variants := make(map[string]map[string]int)
	for s, a := range fl {
		cr := byClass[a.Class]
		if cr == nil {
			cr = &classReport{Class: a.Class, Profile: a.Profile.Name}
			byClass[a.Class] = cr
			order = append(order, a.Class)
			variants[a.Class] = make(map[string]int)
		}
		st := mrt.StreamStats(s)
		cr.Streams++
		cr.Frames += st.Frames
		latency[a.Class] += st.TotalLatency
		if sim := mrt.StreamDevice(s); sim != nil {
			cr.EnergyJ += sim.EnergyJ()
		}
		if v := mrt.StreamVariant(s); v != "" {
			variants[a.Class][v]++
		}
	}
	sort.Strings(order)
	out := make([]classReport, 0, len(order))
	for _, class := range order {
		cr := byClass[class]
		if cr.Frames > 0 {
			cr.MeanLatencyMs = 1e3 * latency[class].Seconds() / float64(cr.Frames)
		}
		names := make([]string, 0, len(variants[class]))
		for v := range variants[class] {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			cr.Variants = append(cr.Variants, variantCount{Variant: v, Streams: variants[class][v]})
		}
		out = append(out, *cr)
	}
	return out
}
