package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateExportSummarize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.anld")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-seed", "9", "-scale", "0.1", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exported to") {
		t.Fatalf("export not reported:\n%s", buf.String())
	}
	var buf2 bytes.Buffer
	if err := run(&buf2, []string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "frames:") {
		t.Fatalf("summary missing:\n%s", buf2.String())
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(io.Discard, nil); err == nil {
		t.Fatal("expected nothing-to-do error")
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(io.Discard, []string{"-in", "/nonexistent.anld"}); err == nil {
		t.Fatal("missing input accepted")
	}
}
