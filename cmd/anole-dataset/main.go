// Command anole-dataset generates, exports and inspects the synthetic
// driving corpus, so that profiling, device runs and external analysis
// can operate on one pinned labeled trace.
//
// Usage:
//
//	anole-dataset -o corpus.anld [-seed N] [-scale F]   # generate + export
//	anole-dataset -in corpus.anld                       # summarize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anole/internal/stats"
	"anole/internal/synth"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-dataset:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("anole-dataset", flag.ContinueOnError)
	var (
		seed  = fs.Uint64("seed", 1, "world seed")
		scale = fs.Float64("scale", 1.0, "corpus scale in (0,1]")
		out   = fs.String("o", "", "export the generated corpus to this file")
		in    = fs.String("in", "", "summarize an existing corpus file instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var corpus *synth.Corpus
	switch {
	case *in != "":
		var err error
		corpus, err = synth.LoadCorpusFile(*in)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loaded %s\n", *in)
	default:
		world, err := synth.NewWorld(synth.DefaultConfig(*seed))
		if err != nil {
			return err
		}
		corpus = world.GenerateCorpus(synth.DefaultProfiles(*scale))
		if *out == "" {
			return fmt.Errorf("nothing to do: pass -o to export or -in to summarize")
		}
	}

	summarize(w, corpus)

	if *out != "" {
		if err := synth.SaveCorpusFile(*out, corpus); err != nil {
			return err
		}
		st, err := os.Stat(*out)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "exported to %s (%d bytes)\n", *out, st.Size())
	}
	return nil
}

func summarize(w io.Writer, corpus *synth.Corpus) {
	cfg := corpus.World.Config()
	fmt.Fprintf(w, "world: seed %d, grid %dx%d, feat dim %d, scene shift %.2f\n",
		cfg.Seed, cfg.GridW, cfg.GridH, cfg.FeatDim, cfg.SceneShift)
	perDataset := make(map[synth.DatasetID]int)
	var brightness, objects []float64
	for _, clip := range corpus.Clips {
		perDataset[clip.Dataset]++
		for _, f := range clip.Frames {
			brightness = append(brightness, f.Brightness)
			objects = append(objects, float64(len(f.Objects)))
		}
	}
	fmt.Fprintf(w, "clips: %d (", len(corpus.Clips))
	for ds := synth.DatasetID(0); int(ds) < synth.NumDatasets; ds++ {
		if n := perDataset[ds]; n > 0 {
			fmt.Fprintf(w, "%s %d ", ds, n)
		}
	}
	fmt.Fprintf(w, "), %d unseen\n", len(corpus.UnseenClips()))
	fmt.Fprintf(w, "frames: %d total (%d train / %d val / %d test / %d unseen)\n",
		corpus.TotalFrames(),
		len(corpus.Frames(synth.Train)), len(corpus.Frames(synth.Val)),
		len(corpus.Frames(synth.Test)), len(corpus.Frames(synth.Unseen)))
	fmt.Fprintf(w, "scenes present in training: %d of %d\n",
		len(corpus.ScenesPresent()), synth.NumScenes)
	bs := stats.Summarize(brightness)
	os := stats.Summarize(objects)
	fmt.Fprintf(w, "brightness mean %.2f (min %.2f / max %.2f); objects/frame mean %.1f (max %.0f)\n",
		bs.Mean, bs.Min, bs.Max, os.Mean, os.Max)
}
