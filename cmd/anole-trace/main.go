// Command anole-trace summarizes a JSONL decision trace written by
// anole-run -trace: frame counts, cache behavior, per-model and per-scene
// usage, and the novelty high-water mark.
//
// Usage:
//
//	anole-trace -in run.jsonl [-top N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"anole/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-trace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("anole-trace", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "trace file (JSONL) to summarize")
		top = fs.Int("top", 5, "number of top models/scenes to list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	s.Render(w)

	fmt.Fprintf(w, "\ntop models by frames served:\n")
	for _, kv := range topOf(s.ModelUse, *top) {
		fmt.Fprintf(w, "  %-10s %6d frames (%.1f%%)\n", kv.k, kv.n, 100*float64(kv.n)/float64(s.Frames))
	}
	fmt.Fprintf(w, "top scenes by frames:\n")
	for _, kv := range topOf(s.SceneUse, *top) {
		fmt.Fprintf(w, "  %-30s %6d frames\n", kv.k, kv.n)
	}
	return nil
}

type kv struct {
	k string
	n int
}

func topOf(m map[string]int, top int) []kv {
	out := make([]kv, 0, len(m))
	for k, n := range m {
		out = append(out, kv{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].k < out[j].k
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}
