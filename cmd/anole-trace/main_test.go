package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresInput(t *testing.T) {
	if err := run(io.Discard, nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(io.Discard, []string{"-in", "/nonexistent.jsonl"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunSummarizesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	content := `{"frame":0,"scene":"clear/urban/daytime","desired":"M_1","used":"M_1","hit":false,"f1":0.5,"latencyUs":1000}
{"frame":1,"scene":"clear/urban/daytime","desired":"M_1","used":"M_1","hit":true,"f1":0.7,"latencyUs":900}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 frames") {
		t.Fatalf("summary missing frame count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "M_1") {
		t.Fatalf("summary missing model usage:\n%s", out.String())
	}
}

func TestTopOf(t *testing.T) {
	got := topOf(map[string]int{"a": 1, "b": 3, "c": 3}, 2)
	if len(got) != 2 || got[0].k != "b" || got[1].k != "c" {
		t.Fatalf("topOf: %+v", got)
	}
}
