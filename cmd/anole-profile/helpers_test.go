package main

import (
	"anole/internal/synth"
)

func synthNewWorldForTest() (*synth.World, error) {
	return synth.NewWorld(synth.DefaultConfig(77))
}

func saveCorpus(path string, w *synth.World) error {
	corpus := w.GenerateCorpus(synth.DefaultProfiles(0.12))
	return synth.SaveCorpusFile(path, corpus)
}
