package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/repo"
)

func TestRunProfileEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tiny.bundle")
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "0.15", "-n", "4", "-delta", "0.03", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "repertoire:") {
		t.Fatalf("missing repertoire report:\n%s", buf.String())
	}
	b, err := repo.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumModels() == 0 {
		t.Fatal("empty bundle")
	}
}

func TestRunProfileBadFlags(t *testing.T) {
	if err := run(io.Discard, []string{"-scale", "x"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunProfileFromStoredCorpus(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "c.anld")
	// Export a small corpus via the synth API directly.
	w, err := synthNewWorldForTest()
	if err != nil {
		t.Fatal(err)
	}
	if err := saveCorpus(corpusPath, w); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "b.bundle")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-corpus", corpusPath, "-n", "4", "-delta", "0.03", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded corpus") {
		t.Fatalf("corpus load not reported:\n%s", buf.String())
	}
}
