// Command anole-profile runs Offline Scene Profiling end to end —
// generate the synthetic driving corpus, train M_scene, bank the
// compressed-model repertoire with Algorithm 1, run adaptive scene
// sampling, train M_decision — and writes the deployable bundle to disk.
//
// Usage:
//
//	anole-profile [-seed N] [-scale F] [-n MODELS] [-delta F] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"anole/internal/core"
	"anole/internal/repo"
	"anole/internal/synth"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-profile:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("anole-profile", flag.ContinueOnError)
	var (
		seed   = fs.Uint64("seed", 1, "root seed for world generation and training")
		scale  = fs.Float64("scale", 1.0, "corpus scale in (0,1]; 1 = paper-size 64 clips")
		n      = fs.Int("n", 19, "target repertoire size (paper: 19)")
		delta  = fs.Float64("delta", 0.3, "Algorithm 1 validation-F1 acceptance threshold")
		out    = fs.String("o", "anole.bundle", "output bundle path")
		corpus = fs.String("corpus", "", "profile a corpus exported by anole-dataset instead of generating one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	start := time.Now()
	var data *synth.Corpus
	if *corpus != "" {
		var err error
		data, err = synth.LoadCorpusFile(*corpus)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loaded corpus %s\n", *corpus)
	} else {
		world, err := synth.NewWorld(synth.DefaultConfig(*seed))
		if err != nil {
			return err
		}
		data = world.GenerateCorpus(synth.DefaultProfiles(*scale))
	}
	fmt.Fprintf(w, "corpus: %d clips, %d frames (%d train / %d val / %d test / %d unseen)\n",
		len(data.Clips), data.TotalFrames(),
		len(data.Frames(synth.Train)), len(data.Frames(synth.Val)),
		len(data.Frames(synth.Test)), len(data.Frames(synth.Unseen)))

	cfg := core.DefaultProfileConfig(*seed)
	cfg.Repertoire.N = *n
	cfg.Repertoire.Delta = *delta
	fmt.Fprintln(w, "profiling (M_scene -> Algorithm 1 -> ASS -> M_decision)...")
	bundle, err := core.Profile(data, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "repertoire: %d compressed models\n", bundle.NumModels())
	for i, info := range bundle.Infos {
		fmt.Fprintf(w, "  %-6s level k=%d cluster %d  scenes %-3d  valF1 %.3f\n",
			info.Name, info.Level, info.Cluster, len(info.TrainScenes), info.ValF1)
		_ = i
	}

	if err := repo.SaveFile(*out, bundle); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bundle written to %s (%d bytes) in %s\n",
		*out, st.Size(), time.Since(start).Round(time.Second))
	return nil
}
