package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/nn"
	"anole/internal/scene"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/xrand"
)

// testBundle builds an untrained but valid bundle for handler tests.
func testBundle(t *testing.T) *core.Bundle {
	t.Helper()
	featDim := synth.DefaultConfig(1).FeatDim
	rng := xrand.NewLabeled(7, "anole-server-test-bundle")
	const embedDim, models = 4, 3
	encNet := nn.NewMLP(nn.MLPConfig{
		InDim: synth.FrameFeatureDim(featDim), Hidden: []int{6, embedDim}, OutDim: 2,
	}, rng)
	enc, err := scene.FromParts(encNet.Freeze(), []int{0, 1}, embedDim)
	if err != nil {
		t.Fatal(err)
	}
	head := nn.NewMLP(nn.MLPConfig{InDim: embedDim, Hidden: []int{5}, OutDim: models}, rng)
	dec, err := decision.FromParts(enc, head.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	detectors := make([]*detect.Detector, models)
	infos := make([]core.ModelInfo, models)
	for i := range detectors {
		detectors[i] = detect.NewDetector(fmt.Sprintf("M_%d", i), detect.Compressed, featDim, rng)
		infos[i] = core.ModelInfo{
			Name: detectors[i].Name, Level: i, Cluster: i,
			TrainScenes: []int{i}, ValF1: 0.5,
		}
	}
	b := &core.Bundle{
		Encoder:   enc,
		Decision:  dec,
		Detectors: detectors,
		Infos:     infos,
		FeatDim:   featDim,
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerMetricsEndpoint drives the exact handler the command
// serves: bundle requests must move the anole_server_* counters, the
// /metrics exposition must parse cleanly with no duplicate series and
// only scheme-conformant names, and /debug/spans must carry one span
// per instrumented request.
func TestServerMetricsEndpoint(t *testing.T) {
	handler, _, err := newHandler(testBundle(t), 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Two good requests and one 404 under /v1/.
	for _, path := range []string{"/v1/manifest", "/v1/manifest", "/v1/absent"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if v, ok := telemetry.SeriesValue(series, "anole_server_requests_total"); !ok || v != 3 {
		t.Fatalf("requests_total = %v (present %v), want 3", v, ok)
	}
	// The 404 is a client-side miss, not a server failure: the error
	// counter (status >= 500) must exist but stay zero.
	if v, ok := telemetry.SeriesValue(series, "anole_server_request_errors_total"); !ok || v != 0 {
		t.Fatalf("request_errors_total = %v (present %v), want 0", v, ok)
	}
	if v, ok := telemetry.SeriesValue(series, "anole_server_request_seconds_count"); !ok || v != 3 {
		t.Fatalf("request_seconds_count = %v (present %v), want 3", v, ok)
	}
	for _, s := range series {
		if len(s.Name) < 6 || s.Name[:6] != "anole_" {
			t.Errorf("series %q outside the anole_ naming scheme", s.Name)
		}
	}

	sresp, err := http.Get(ts.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var spans []telemetry.Span
	if err := json.NewDecoder(sresp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	// /metrics and /debug/spans themselves are not instrumented, so
	// exactly the three /v1/ requests appear.
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Stage != "GET /v1/manifest" {
		t.Fatalf("span stage = %q", spans[0].Stage)
	}
}

// TestServerMetricsNotInstrumented pins that scraping /metrics does not
// perturb the counters it reports (no self-counting loop).
func TestServerMetricsNotInstrumented(t *testing.T) {
	handler, _, err := newHandler(testBundle(t), 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		series, err := telemetry.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := telemetry.SeriesValue(series, "anole_server_requests_total"); v != 0 {
			t.Fatalf("scrape %d inflated requests_total to %v", i, v)
		}
	}
}
