package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"anole/internal/adapt"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// encodeTestReport encodes a well-formed drift report against the test
// bundle's geometry (world featDim, encoder embed dim).
func encodeTestReport(t *testing.T) []byte {
	t.Helper()
	bundle := testBundle(t)
	world, err := synth.NewWorld(synth.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewLabeled(9, "anole-server-drift-test")
	// Scene 5 is absent from the test encoder's {0, 1} label space.
	frames := make([]*synth.Frame, 16)
	for i := range frames {
		frames[i] = world.GenerateFrame(synth.SceneFromIndex(5), 1, rng)
	}
	rep := &adapt.Report{
		Stream:      0,
		Seq:         30,
		Generation:  1,
		Window:      30,
		MeanNovelty: 2.0,
		Signals:     2,
		Centroid:    bundle.Encoder.Embed(frames[0]).Clone(),
		Exemplars:   frames,
	}
	var buf bytes.Buffer
	if err := adapt.WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerDriftEndpoint exercises POST /v1/drift on the exact handler
// the command serves with -adapt: a valid report is accepted with a
// JSON verdict, malformed input is the client's fault, and without
// -adapt the route does not exist.
func TestServerDriftEndpoint(t *testing.T) {
	handler, _, err := newHandler(testBundle(t), 64, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	body := encodeTestReport(t)
	resp, err := http.Post(ts.URL+"/v1/drift", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d, want 200", resp.StatusCode)
	}
	var verdict struct {
		Generation uint64 `json:"generation"`
		Published  bool   `json:"published"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	// One report is not enough evidence for a retrain (MinReports 2).
	if verdict.Published || verdict.Generation != 0 {
		t.Fatalf("single report published generation %d", verdict.Generation)
	}

	gresp, err := http.Get(ts.URL + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", gresp.StatusCode)
	}

	bresp, err := http.Post(ts.URL+"/v1/drift", "application/json", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk status %d, want 400", bresp.StatusCode)
	}
}

func TestServerDriftEndpointAbsentWithoutAdapt(t *testing.T) {
	handler, _, err := newHandler(testBundle(t), 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/drift", "application/json", bytes.NewReader(encodeTestReport(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drift route without -adapt: status %d, want 404", resp.StatusCode)
	}
}
