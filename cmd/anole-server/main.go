// Command anole-server serves a profiled bundle over HTTP so devices can
// download M_scene, M_decision and the compressed-model repertoire before
// going online (the paper's offline cloud↔device path).
//
// Endpoints:
//
//	GET /v1/manifest — JSON summary of the hosted bundle
//	GET /v1/bundle   — the binary bundle
//
// Usage:
//
//	anole-server -bundle anole.bundle [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"anole/internal/repo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anole-server", flag.ContinueOnError)
	var (
		bundlePath = fs.String("bundle", "anole.bundle", "bundle file produced by anole-profile")
		addr       = fs.String("addr", ":8080", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bundle, err := repo.LoadFile(*bundlePath)
	if err != nil {
		return err
	}
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return err
	}
	m := srv.Manifest()
	fmt.Printf("serving %d models (%d bundle bytes) on %s\n", len(m.Models), m.BundleBytes, *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
