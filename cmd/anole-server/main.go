// Command anole-server serves a profiled bundle over HTTP so devices can
// download M_scene, M_decision and the compressed-model repertoire before
// going online (the paper's offline cloud↔device path).
//
// Endpoints:
//
//	GET /v1/manifest — JSON summary of the hosted bundle
//	GET /v1/bundle   — the binary bundle
//	GET /metrics     — Prometheus-text telemetry (anole_server_* request
//	                   counters, latency histogram, inflight gauge)
//	GET /debug/spans — JSON dump of recent request spans
//
// Usage:
//
//	anole-server -bundle anole.bundle [-addr :8080] [-span-buffer N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"anole/internal/core"
	"anole/internal/repo"
	"anole/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-server:", err)
		os.Exit(1)
	}
}

// newHandler builds the command's full HTTP surface: the bundle
// endpoints wrapped in telemetry middleware, plus the /metrics and
// /debug/spans observability endpoints. Split from run so tests can
// drive the exact handler the command serves.
func newHandler(bundle *core.Bundle, spanBuffer int) (http.Handler, *repo.Server, error) {
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return nil, nil, err
	}
	reg := telemetry.NewRegistry()
	spans := telemetry.NewTracer(spanBuffer, nil)
	mux := http.NewServeMux()
	mux.Handle("/v1/", telemetry.InstrumentHandler(reg, spans, "server", srv.Handler()))
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/debug/spans", telemetry.SpansHandler(spans))
	return mux, srv, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("anole-server", flag.ContinueOnError)
	var (
		bundlePath = fs.String("bundle", "anole.bundle", "bundle file produced by anole-profile")
		addr       = fs.String("addr", ":8080", "listen address")
		spanBuffer = fs.Int("span-buffer", telemetry.DefaultSpanBuffer, "request spans retained for /debug/spans")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bundle, err := repo.LoadFile(*bundlePath)
	if err != nil {
		return err
	}
	handler, srv, err := newHandler(bundle, *spanBuffer)
	if err != nil {
		return err
	}
	m := srv.Manifest()
	fmt.Printf("serving %d models (%d bundle bytes) on %s (+ /metrics, /debug/spans)\n",
		len(m.Models), m.BundleBytes, *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
