// Command anole-server serves a profiled bundle over HTTP so devices can
// download M_scene, M_decision and the compressed-model repertoire before
// going online (the paper's offline cloud↔device path), and — with
// -adapt — closes the online half of the loop by accepting drift
// reports and retraining new specialists for emerging scenes.
//
// Endpoints:
//
//	GET  /v1/manifest — JSON summary of the hosted bundle
//	GET  /v1/bundle   — the binary bundle
//	POST /v1/drift    — drift-report intake (with -adapt): reports are
//	                    clustered into emerging-scene signatures; enough
//	                    evidence triggers a deterministic retrain and a
//	                    new published generation
//	GET  /metrics     — Prometheus-text telemetry (anole_server_* request
//	                    counters, latency histogram, inflight gauge, plus
//	                    anole_adapt_retrain* with -adapt)
//	GET  /debug/spans — JSON dump of recent request spans
//
// Usage:
//
//	anole-server -bundle anole.bundle [-addr :8080] [-span-buffer N]
//	             [-adapt] [-seed N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"anole/internal/adapt"
	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/repo"
	"anole/internal/sampling"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-server:", err)
		os.Exit(1)
	}
}

// controllerTrainFrames regenerates a balanced training set for the
// adaptation controller's decision-pool rebuild: the bundle records
// which scenes its repertoire trained on, and the synthetic world (same
// seed the bundle was profiled with) replays frames of exactly those
// scenes. ExpandRepertoire mixes these with a drift cluster's exemplars
// so the expanded decision head keeps its incumbent routing.
func controllerTrainFrames(b *core.Bundle, seed uint64) ([]*synth.Frame, error) {
	cfg := synth.DefaultConfig(seed)
	cfg.FeatDim = b.FeatDim
	world, err := synth.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	rng := xrand.NewLabeled(seed, "anole-server-adapt-train")
	const framesPerScene = 30
	seen := make(map[int]bool)
	var frames []*synth.Frame
	for _, idx := range b.Encoder.ClassToScene {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		s := synth.SceneFromIndex(idx)
		for i := 0; i < framesPerScene; i++ {
			frames = append(frames, world.GenerateFrame(s, 1, rng))
		}
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("bundle encoder maps no scenes")
	}
	return frames, nil
}

// newHandler builds the command's full HTTP surface: the bundle
// endpoints wrapped in telemetry middleware, the drift-report intake
// when adaptOn, plus the /metrics and /debug/spans observability
// endpoints. Split from run so tests can drive the exact handler the
// command serves.
func newHandler(bundle *core.Bundle, spanBuffer int, seed uint64, adaptOn bool) (http.Handler, *repo.Server, error) {
	srv, err := repo.NewServer(bundle)
	if err != nil {
		return nil, nil, err
	}
	reg := telemetry.NewRegistry()
	spans := telemetry.NewTracer(spanBuffer, nil)
	mux := http.NewServeMux()
	mux.Handle("/v1/", telemetry.InstrumentHandler(reg, spans, "server", srv.Handler()))
	if adaptOn {
		trainFrames, err := controllerTrainFrames(bundle, seed)
		if err != nil {
			return nil, nil, err
		}
		ctrl, err := adapt.NewController(bundle, srv, adapt.ControllerConfig{
			Seed:        seed,
			TrainFrames: trainFrames,
			Train:       detect.TrainConfig{Epochs: 20},
			Sampling:    sampling.Config{Kappa: 600},
			Metrics:     reg,
			// Cloud-side causal spans: cluster → retrain → publish →
			// rollback, each tagged with the drift report's trace ID so
			// /debug/spans?trace= stitches into the device's journey.
			Tracer: spans,
		})
		if err != nil {
			return nil, nil, err
		}
		// The more specific pattern wins over /v1/; NewDriftHandler
		// serializes Submit calls itself.
		mux.Handle("/v1/drift", telemetry.InstrumentHandler(reg, spans, "server", adapt.NewDriftHandler(ctrl)))
	}
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/debug/spans", telemetry.SpansHandler(spans))
	return mux, srv, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("anole-server", flag.ContinueOnError)
	var (
		bundlePath = fs.String("bundle", "anole.bundle", "bundle file produced by anole-profile")
		addr       = fs.String("addr", ":8080", "listen address")
		spanBuffer = fs.Int("span-buffer", telemetry.DefaultSpanBuffer, "request spans retained for /debug/spans")
		adaptOn    = fs.Bool("adapt", false, "accept drift reports on POST /v1/drift and retrain/publish new generations")
		seed       = fs.Uint64("seed", 1, "seed of the world the bundle was profiled on (with -adapt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bundle, err := repo.LoadFile(*bundlePath)
	if err != nil {
		return err
	}
	handler, srv, err := newHandler(bundle, *spanBuffer, *seed, *adaptOn)
	if err != nil {
		return err
	}
	m := srv.Manifest()
	mode := ""
	if *adaptOn {
		mode = ", adaptation controller on /v1/drift"
	}
	fmt.Printf("serving %d models (%d bundle bytes) on %s (+ /metrics, /debug/spans%s)\n",
		len(m.Models), m.BundleBytes, *addr, mode)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
