package main

import "testing"

func TestRunMissingBundle(t *testing.T) {
	if err := run([]string{"-bundle", "/nonexistent.bundle"}); err == nil {
		t.Fatal("missing bundle accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}); err == nil {
		t.Fatal("expected flag error")
	}
}
