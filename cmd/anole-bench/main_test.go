package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunQuickSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-quick", "-only", "table2,fig5"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Fig. 5") {
		t.Fatalf("selected experiments missing:\n%s", out)
	}
	if strings.Contains(out, "Fig. 8") {
		t.Fatal("-only did not filter")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(io.Discard, []string{"-scale", "zzz"}); err == nil {
		t.Fatal("expected flag error")
	}
}
