// Command anole-bench regenerates every table and figure of the paper's
// evaluation section (plus this reproduction's ablations) and prints them
// as text rows. See DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	anole-bench [-seed N] [-scale F] [-quick] [-only fig8,table3,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"anole/internal/eval"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anole-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("anole-bench", flag.ContinueOnError)
	var (
		seed  = fs.Uint64("seed", 20240777, "root seed for the whole run")
		scale = fs.Float64("scale", 1.0, "corpus scale in (0,1]; 1 = paper-size 64 clips")
		quick = fs.Bool("quick", false, "use the reduced quick-lab configuration (overrides -scale)")
		only  = fs.String("only", "", "comma-separated experiment ids to run (default all): "+
			"fig3,fig4a,fig4b,fig5,fig6,fig7a,fig7b,fig8,fig10,fig11,table2,table3,table4,selection,offload,continual,ablshift,ablrep,ablcache,ablthermal,ablquant,ablhyst")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	cfg := eval.DefaultLabConfig(*seed)
	cfg.Scale = *scale
	if *quick {
		cfg = eval.QuickLabConfig(*seed)
	}
	start := time.Now()
	fmt.Fprintf(w, "building lab (seed %d, scale %.2f)...\n", *seed, cfg.Scale)
	lab, err := eval.NewLab(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lab ready in %s: %d-model repertoire, %d frames\n\n",
		time.Since(start).Round(time.Second), lab.Bundle.NumModels(), lab.Corpus.TotalFrames())

	type renderer interface{ Render(io.Writer) }
	section := func(id string, build func() (renderer, error)) error {
		if !selected(id) {
			return nil
		}
		t0 := time.Now()
		res, err := build()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Render(w)
		fmt.Fprintf(w, "[%s done in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	experiments := []struct {
		id    string
		build func() (renderer, error)
	}{
		{"fig3", func() (renderer, error) { return eval.RunFig3(lab, 800) }},
		{"fig4a", func() (renderer, error) { return eval.RunFig4a(lab, 5, 20) }},
		{"fig4b", func() (renderer, error) { return eval.RunFig4b(lab, 5) }},
		{"fig5", func() (renderer, error) { return eval.RunFig5(lab), nil }},
		{"fig6", func() (renderer, error) { return eval.RunFig6(lab, 300), nil }},
		{"fig7a", func() (renderer, error) { return eval.RunFig7a(lab, 100) }},
		{"fig7b", func() (renderer, error) { return eval.RunFig7b(lab, 8, 100) }},
		{"fig8", func() (renderer, error) { return eval.RunFig8(lab, 10) }},
		{"table2", func() (renderer, error) { return eval.RunTable2(lab), nil }},
		{"table3", func() (renderer, error) { return eval.RunTable3(lab) }},
		{"table4", func() (renderer, error) { return eval.RunTable4(lab), nil }},
		{"fig10", func() (renderer, error) { return eval.RunFig10(lab, 100) }},
		{"fig11", func() (renderer, error) { return eval.RunFig11(lab, 400) }},
		{"selection", func() (renderer, error) { return eval.RunSelection(lab, 0) }},
		{"offload", func() (renderer, error) { return eval.RunOffload(lab, 600, nil) }},
		{"continual", func() (renderer, error) { return eval.RunContinual(lab, 120) }},
		{"ablshift", func() (renderer, error) { return eval.RunAblationShift(*seed, nil) }},
		{"ablrep", func() (renderer, error) { return eval.RunAblationRepertoire(lab, nil, nil) }},
		{"ablcache", func() (renderer, error) { return eval.RunAblationCache(lab, 3, 100) }},
		{"ablthermal", func() (renderer, error) { return eval.RunThermal(lab, 3000) }},
		{"ablquant", func() (renderer, error) { return eval.RunQuantize(lab, nil, 600) }},
		{"ablhyst", func() (renderer, error) { return eval.RunHysteresis(lab, 600, nil) }},
	}
	for _, e := range experiments {
		if err := section(e.id, e.build); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "all experiments done in %s\n", time.Since(start).Round(time.Second))
	return nil
}
